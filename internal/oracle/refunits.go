package oracle

import (
	"fmt"

	"selcache/internal/cache"
	"selcache/internal/cache/policy"
	"selcache/internal/mat"
	"selcache/internal/mem"
	"selcache/internal/tlb"
)

// This file holds the naive reference models of every stateful hardware
// unit the optimized engine implements with clever data structures. Each
// model is written straight from the unit's documented policy: LRU order
// is an explicit slice with the most-recently-used element first, lookups
// are linear scans, and set/slot indexing is plain modulo arithmetic. No
// stamps, no MRU hints, no open addressing — if it is not obvious, it does
// not belong here.

// refLine is one resident block (or page, or double word) of a reference
// store, keyed by its block number. hits counts the current generation's
// hits and is only maintained by refCaches running the EHC policy.
type refLine struct {
	block uint64
	dirty bool
	hits  uint64
}

// moveToFront makes entries[i] the MRU element.
func moveToFront(entries []refLine, i int) {
	e := entries[i]
	copy(entries[1:i+1], entries[:i])
	entries[0] = e
}

// refCache is the reference set-associative write-back cache (mirror of
// cache.Cache). Replacement is LRU — the set's last element — unless an
// EHC predictor is attached (ehc non-nil), in which case the victim is
// the minimum-expected-hits line, ties to the least recently used. A
// reference way memo (memo non-nil) is consulted before the tag scan and
// maintained at every install and invalidation, mirroring
// cache.LookupBlockExt's event order exactly.
type refCache struct {
	cfg  cache.Config
	sets [][]refLine // each ordered MRU first

	ehc  *refEHC
	memo *refWayMemo

	stats cache.Stats
	// dirtyMade counts transitions into the dirty state (a write hit on a
	// clean line, or a dirty fill of a line that was not already dirty).
	// Write-back conservation: every such transition must eventually leave
	// as a dirty eviction or a dirty Remove, or still be resident dirty.
	dirtyMade    uint64
	removedDirty uint64
}

func newRefCache(cfg cache.Config) *refCache {
	return &refCache{cfg: cfg, sets: make([][]refLine, cfg.Sets())}
}

func (c *refCache) blockOf(a mem.Addr) uint64 { return uint64(a) / uint64(c.cfg.Block) }

func (c *refCache) setOf(block uint64) int { return int(block % uint64(c.cfg.Sets())) }

// lookup probes for the block containing a; a hit refreshes recency and
// records a store's dirty bit.
func (c *refCache) lookup(a mem.Addr, write bool) bool {
	c.stats.Accesses++
	block := c.blockOf(a)
	set := c.sets[c.setOf(block)]
	memoHit := false
	if c.memo != nil {
		c.memo.stats.Probes++
		memoHit = c.memo.hit(block)
		if memoHit {
			c.memo.stats.Hits++
		}
	}
	for i := range set {
		if set[i].block != block {
			continue
		}
		if write && !set[i].dirty {
			set[i].dirty = true
			c.dirtyMade++
		}
		if c.ehc != nil {
			set[i].hits++
		}
		moveToFront(set, i)
		c.stats.Hits++
		if c.memo != nil && !memoHit {
			c.memo.install(block)
		}
		return true
	}
	if memoHit {
		panic("oracle: way-memo hit for a block not resident in the reference cache")
	}
	c.stats.Misses++
	return false
}

// contains reports residency without touching recency or statistics.
func (c *refCache) contains(a mem.Addr) bool {
	block := c.blockOf(a)
	for _, ln := range c.sets[c.setOf(block)] {
		if ln.block == block {
			return true
		}
	}
	return false
}

// victimIndex picks the line a fill into a full set displaces: the LRU
// line (the last element) for LRU replacement, or the minimum-expected-
// hits line under EHC. The scan walks LRU-to-MRU with a strict minimum,
// so expectation ties go to the least recently used line — the same
// lexicographic (expected, recency) minimum policy.EHC computes with
// stamps.
func (c *refCache) victimIndex(set []refLine) int {
	if c.ehc == nil {
		return len(set) - 1
	}
	vi := -1
	var ve uint64
	for i := len(set) - 1; i >= 0; i-- {
		if e := c.ehc.expected(set[i]); vi < 0 || e < ve {
			vi, ve = i, e
		}
	}
	return vi
}

// victimBlock predicts what a fill for a would displace: the victim line
// of the set, and only if the set is full (a fill lands in an empty way
// otherwise).
func (c *refCache) victimBlock(a mem.Addr) (mem.Addr, bool) {
	set := c.sets[c.setOf(c.blockOf(a))]
	if len(set) < c.cfg.Assoc {
		return 0, false
	}
	return mem.Addr(set[c.victimIndex(set)].block * uint64(c.cfg.Block)), true
}

// fill installs the block containing a, evicting the set's LRU line when
// full. Filling a resident block refreshes it and ORs the dirty bit.
func (c *refCache) fill(a mem.Addr, dirty bool) cache.Evicted {
	block := c.blockOf(a)
	s := c.setOf(block)
	set := c.sets[s]
	for i := range set {
		if set[i].block != block {
			continue
		}
		if dirty && !set[i].dirty {
			set[i].dirty = true
			c.dirtyMade++
		}
		if c.ehc != nil {
			set[i].hits++
		}
		moveToFront(set, i)
		return cache.Evicted{}
	}
	ev := cache.Evicted{}
	if len(set) == c.cfg.Assoc {
		vi := c.victimIndex(set)
		victim := set[vi]
		ev = cache.Evicted{
			BlockAddr: mem.Addr(victim.block * uint64(c.cfg.Block)),
			Dirty:     victim.dirty,
			Valid:     true,
		}
		c.stats.Evictions++
		if victim.dirty {
			c.stats.DirtyEvictions++
		}
		if c.ehc != nil {
			c.ehc.endGeneration(victim.block, victim.hits)
		}
		if c.memo != nil {
			c.memo.invalidate(victim.block)
		}
		set = append(set[:vi], set[vi+1:]...)
	}
	if dirty {
		c.dirtyMade++
	}
	c.stats.Fills++
	c.sets[s] = append([]refLine{{block: block, dirty: dirty}}, set...)
	if c.memo != nil {
		c.memo.install(block)
	}
	return ev
}

// remove invalidates the block containing a if resident, returning its
// dirty bit (victim-cache swaps).
func (c *refCache) remove(a mem.Addr) (dirty, ok bool) {
	block := c.blockOf(a)
	s := c.setOf(block)
	set := c.sets[s]
	for i := range set {
		if set[i].block != block {
			continue
		}
		dirty = set[i].dirty
		if dirty {
			c.removedDirty++
		}
		if c.ehc != nil {
			c.ehc.endGeneration(set[i].block, set[i].hits)
		}
		if c.memo != nil {
			c.memo.invalidate(block)
		}
		c.sets[s] = append(set[:i], set[i+1:]...)
		return dirty, true
	}
	return false, false
}

// snapshot renders the cache in the same form cache.Cache.SnapshotSets
// produces.
func (c *refCache) snapshot() [][]cache.LineSnapshot {
	out := make([][]cache.LineSnapshot, len(c.sets))
	for s, set := range c.sets {
		snap := make([]cache.LineSnapshot, len(set))
		for i, ln := range set {
			snap[i] = cache.LineSnapshot{
				BlockAddr: mem.Addr(ln.block * uint64(c.cfg.Block)),
				Dirty:     ln.dirty,
			}
		}
		out[s] = snap
	}
	return out
}

// snapshotEHC renders the per-line generation hit counts in
// policy.EHC.SnapshotSets form (valid lines MRU first).
func (c *refCache) snapshotEHC() [][]policy.EHCLineSnapshot {
	out := make([][]policy.EHCLineSnapshot, len(c.sets))
	for s, set := range c.sets {
		snap := make([]policy.EHCLineSnapshot, len(set))
		for i, ln := range set {
			snap[i] = policy.EHCLineSnapshot{Block: ln.block, Hits: ln.hits}
		}
		out[s] = snap
	}
	return out
}

// conservation checks the write-back conservation invariant: dirty bits
// created == dirty bits that left (evictions and removals) + dirty bits
// still resident.
func (c *refCache) conservation() error {
	var resident uint64
	for _, set := range c.sets {
		for _, ln := range set {
			if ln.dirty {
				resident++
			}
		}
	}
	if got := c.stats.DirtyEvictions + c.removedDirty + resident; got != c.dirtyMade {
		return fmt.Errorf("dirty-writeback conservation: created %d, accounted %d (evicted %d + removed %d + resident %d)",
			c.dirtyMade, got, c.stats.DirtyEvictions, c.removedDirty, resident)
	}
	return nil
}

// refFA is the reference fully-associative LRU store: a single MRU-first
// slice (mirror of cache.FA).
type refFA struct {
	capacity int
	entries  []refLine
	// newInserts counts inserts of non-resident keys; takes counts
	// removals via take; evictions counts capacity evictions. Conservation:
	// newInserts == takes + evictions + len(entries).
	newInserts uint64
	takes      uint64
	evictions  uint64
}

func newRefFA(capacity int) *refFA { return &refFA{capacity: capacity} }

// probe refreshes recency and ORs dirty on a hit, returning the updated
// payload.
func (f *refFA) probe(key uint64, dirty bool) (wasDirty, hit bool) {
	for i := range f.entries {
		if f.entries[i].block != key {
			continue
		}
		f.entries[i].dirty = f.entries[i].dirty || dirty
		moveToFront(f.entries, i)
		return f.entries[0].dirty, true
	}
	return false, false
}

// take removes key if present, returning its payload.
func (f *refFA) take(key uint64) (dirty, ok bool) {
	for i := range f.entries {
		if f.entries[i].block != key {
			continue
		}
		dirty = f.entries[i].dirty
		f.entries = append(f.entries[:i], f.entries[i+1:]...)
		f.takes++
		return dirty, true
	}
	return false, false
}

// insert installs key as MRU, evicting the LRU entry when full; inserting
// a resident key refreshes it and ORs dirty.
func (f *refFA) insert(key uint64, dirty bool) (evictedKey uint64, evictedDirty, evicted bool) {
	for i := range f.entries {
		if f.entries[i].block != key {
			continue
		}
		f.entries[i].dirty = f.entries[i].dirty || dirty
		moveToFront(f.entries, i)
		return 0, false, false
	}
	if len(f.entries) == f.capacity {
		last := f.entries[len(f.entries)-1]
		evictedKey, evictedDirty, evicted = last.block, last.dirty, true
		f.entries = f.entries[:len(f.entries)-1]
		f.evictions++
	}
	f.newInserts++
	f.entries = append([]refLine{{block: key, dirty: dirty}}, f.entries...)
	return evictedKey, evictedDirty, evicted
}

// snapshot renders the store in cache.FA.Snapshot form.
func (f *refFA) snapshot() []cache.FASnapshot {
	out := make([]cache.FASnapshot, len(f.entries))
	for i, e := range f.entries {
		out[i] = cache.FASnapshot{Key: e.block, Dirty: e.dirty}
	}
	return out
}

// conservation checks that every key ever newly inserted either left
// through take or eviction or is still resident.
func (f *refFA) conservation() error {
	if got := f.takes + f.evictions + uint64(len(f.entries)); got != f.newInserts {
		return fmt.Errorf("FA conservation: %d new inserts, accounted %d (takes %d + evictions %d + resident %d)",
			f.newInserts, got, f.takes, f.evictions, len(f.entries))
	}
	return nil
}

// refVictim is the reference victim cache (mirror of cache.Victim).
type refVictim struct {
	fa        *refFA
	blockSize uint64
	stats     cache.VictimStats
}

func newRefVictim(entries, blockSize int) *refVictim {
	return &refVictim{fa: newRefFA(entries), blockSize: uint64(blockSize)}
}

func (v *refVictim) probe(a mem.Addr) (dirty, hit bool) {
	v.stats.Probes++
	dirty, hit = v.fa.take(uint64(a) / v.blockSize)
	if hit {
		v.stats.Hits++
	}
	return dirty, hit
}

func (v *refVictim) insert(a mem.Addr, dirty bool) cache.Evicted {
	v.stats.Inserts++
	key, d, ev := v.fa.insert(uint64(a)/v.blockSize, dirty)
	if !ev {
		return cache.Evicted{}
	}
	return cache.Evicted{BlockAddr: mem.Addr(key * v.blockSize), Dirty: d, Valid: true}
}

// refBuffer is the reference bypass buffer of 8-byte double words (mirror
// of mat.Buffer).
type refBuffer struct {
	fa    *refFA
	stats mat.BufferStats
}

const refDwordBytes = 8

func newRefBuffer(words int) *refBuffer { return &refBuffer{fa: newRefFA(words)} }

func (b *refBuffer) probe(a mem.Addr, write bool) bool {
	b.stats.Probes++
	_, hit := b.fa.probe(uint64(a)/refDwordBytes, write)
	if hit {
		b.stats.Hits++
	}
	return hit
}

func (b *refBuffer) fill(a mem.Addr, dirty bool) (writeback bool) {
	b.stats.Fills++
	_, evDirty, ev := b.fa.insert(uint64(a)/refDwordBytes, dirty)
	if ev && evDirty {
		b.stats.DirtyEvts++
		return true
	}
	return false
}

// fillSpan installs span double words starting at the referenced one,
// never crossing the blockBytes-aligned boundary; only the first carries
// the store's dirty bit.
func (b *refBuffer) fillSpan(a mem.Addr, dirty bool, span, blockBytes int) (writebacks int) {
	hot := uint64(a) / refDwordBytes
	blockStart := uint64(a) - uint64(a)%uint64(blockBytes)
	limit := (blockStart + uint64(blockBytes)) / refDwordBytes
	for w := 0; w < span && hot+uint64(w) < limit; w++ {
		key := hot + uint64(w)
		b.stats.Fills++
		_, evDirty, ev := b.fa.insert(key, dirty && key == hot)
		if ev && evDirty {
			b.stats.DirtyEvts++
			writebacks++
		}
	}
	return writebacks
}

// refTLB is the reference set-associative LRU TLB (mirror of tlb.TLB,
// which fills on miss as part of the translate).
type refTLB struct {
	cfg   tlb.Config
	sets  [][]uint64 // page numbers, MRU first
	stats tlb.Stats
}

func newRefTLB(cfg tlb.Config) *refTLB {
	return &refTLB{cfg: cfg, sets: make([][]uint64, cfg.Entries/cfg.Assoc)}
}

func (t *refTLB) translate(a mem.Addr) bool {
	t.stats.Accesses++
	page := uint64(a) / uint64(t.cfg.PageSize)
	s := int(page % uint64(len(t.sets)))
	set := t.sets[s]
	for i, p := range set {
		if p != page {
			continue
		}
		copy(set[1:i+1], set[:i])
		set[0] = page
		return true
	}
	t.stats.Misses++
	if len(set) == t.cfg.Assoc {
		set = set[:len(set)-1]
	}
	t.sets[s] = append([]uint64{page}, set...)
	return false
}

func (t *refTLB) snapshot() [][]uint64 {
	out := make([][]uint64, len(t.sets))
	for s, set := range t.sets {
		// make (not append to nil) so empty sets compare equal to the
		// engine's always-non-nil snapshot slices under DeepEqual.
		pages := make([]uint64, len(set))
		copy(pages, set)
		out[s] = pages
	}
	return out
}

// refMATEntry is one direct-mapped MAT slot.
type refMATEntry struct {
	tag       uint64
	lastBlock uint64
	counter   uint32
}

// refMAT is the reference Memory Access Table (mirror of mat.Table).
type refMAT struct {
	cfg      mat.Config
	entries  []refMATEntry
	sinceAge uint64
	stats    mat.Stats
}

func newRefMAT(cfg mat.Config) *refMAT {
	return &refMAT{cfg: cfg, entries: make([]refMATEntry, cfg.Entries)}
}

func (t *refMAT) macro(a mem.Addr) uint64 { return uint64(a) / uint64(t.cfg.MacroBlock) }

func (t *refMAT) touch(a mem.Addr) {
	t.stats.Touches++
	m := t.macro(a)
	b := uint64(a) / uint64(t.cfg.BlockBytes)
	e := &t.entries[m%uint64(len(t.entries))]
	if e.tag != m {
		// A conflicting macro-block steals the slot; the first access must
		// count, so pre-set lastBlock to a value b can never equal.
		e.tag = m
		e.counter = 0
		e.lastBlock = b + 1
		t.stats.TagReplaces++
	}
	if e.lastBlock != b && e.counter < t.cfg.CounterMax {
		e.counter++
	}
	e.lastBlock = b
	if t.cfg.AgePeriod > 0 {
		t.sinceAge++
		if t.sinceAge >= t.cfg.AgePeriod {
			t.sinceAge = 0
			t.stats.Agings++
			for i := range t.entries {
				t.entries[i].counter /= 2
			}
		}
	}
}

func (t *refMAT) counter(a mem.Addr) uint32 {
	m := t.macro(a)
	e := t.entries[m%uint64(len(t.entries))]
	if e.tag != m {
		return 0
	}
	return e.counter
}

// shouldBypass is the frequency-comparison caching decision: bypass only
// when the missing macro-block is cold in absolute terms (the ceiling
// depends on the spatial prediction) and accessed BypassRatio times less
// frequently than the would-be victim's macro-block.
func (t *refMAT) shouldBypass(missAddr, victimAddr mem.Addr, victimValid, spatial bool) bool {
	if !victimValid {
		return false
	}
	miss := t.counter(missAddr)
	ceiling := t.cfg.ColdMaxSparse
	if spatial {
		ceiling = t.cfg.ColdMax
	}
	if ceiling > 0 && miss >= ceiling {
		return false
	}
	return miss*t.cfg.BypassRatio < t.counter(victimAddr)
}

func (t *refMAT) snapshot() []mat.EntrySnapshot {
	out := make([]mat.EntrySnapshot, len(t.entries))
	for i, e := range t.entries {
		out[i] = mat.EntrySnapshot{Tag: e.tag, LastBlock: e.lastBlock, Counter: e.counter}
	}
	return out
}

// refSLDTEntry is one direct-mapped SLDT slot.
type refSLDTEntry struct {
	tag       uint64
	lastBlock uint64
	counter   int8
	valid     bool
}

// refSLDT is the reference Spatial Locality Detection Table (mirror of
// mat.SLDT): the saturating counter moves up on adjacent-block accesses
// within a macro-block, down on jumps, and same-block accesses are
// neutral.
type refSLDT struct {
	cfg       mat.Config
	blockSize uint64
	entries   []refSLDTEntry
	stats     mat.Stats
}

const (
	refSLDTMax = 7
	refSLDTMin = -8
)

func newRefSLDT(cfg mat.Config, blockSize int) *refSLDT {
	return &refSLDT{cfg: cfg, blockSize: uint64(blockSize), entries: make([]refSLDTEntry, cfg.SLDTEntries)}
}

func (s *refSLDT) observe(a mem.Addr) {
	m := uint64(a) / uint64(s.cfg.MacroBlock)
	b := uint64(a) / s.blockSize
	e := &s.entries[m%uint64(len(s.entries))]
	if !e.valid || e.tag != m {
		*e = refSLDTEntry{tag: m, lastBlock: b, counter: 0, valid: true}
		return
	}
	switch {
	case b == e.lastBlock:
		// Temporal reuse: no evidence either way.
	case b == e.lastBlock+1 || b == e.lastBlock-1:
		if e.counter < refSLDTMax {
			e.counter++
		}
	default:
		if e.counter > refSLDTMin {
			e.counter--
		}
	}
	e.lastBlock = b
}

func (s *refSLDT) spatial(a mem.Addr) bool {
	m := uint64(a) / uint64(s.cfg.MacroBlock)
	e := s.entries[m%uint64(len(s.entries))]
	ok := e.valid && e.tag == m && e.counter >= s.cfg.SpatialThreshold
	if ok {
		s.stats.SpatialYes++
	} else {
		s.stats.SpatialNo++
	}
	return ok
}

func (s *refSLDT) snapshot() []mat.SLDTEntrySnapshot {
	out := make([]mat.SLDTEntrySnapshot, len(s.entries))
	for i, e := range s.entries {
		out[i] = mat.SLDTEntrySnapshot{Tag: e.tag, LastBlock: e.lastBlock, Counter: e.counter, Valid: e.valid}
	}
	return out
}

// refClassifier is the reference shadow miss classifier (mirror of
// cache.Classifier): a fully-associative LRU shadow of equal capacity
// plus a seen-set splits misses into compulsory/conflict/capacity.
type refClassifier struct {
	shadow    *refFA
	blockSize uint64
	seen      map[uint64]bool
	stats     cache.ClassifyStats
}

func newRefClassifier(cfg cache.Config) *refClassifier {
	return &refClassifier{
		shadow:    newRefFA(cfg.Lines()),
		blockSize: uint64(cfg.Block),
		seen:      make(map[uint64]bool),
	}
}

func (c *refClassifier) observe(a mem.Addr, miss bool) {
	block := uint64(a) / c.blockSize
	_, inShadow := c.shadow.probe(block, false)
	if miss {
		switch {
		case !c.seen[block]:
			c.stats.Compulsory++
		case inShadow:
			c.stats.Conflict++
		default:
			c.stats.Capacity++
		}
	}
	if !inShadow {
		c.shadow.insert(block, false)
	}
	c.seen[block] = true
}
