package mem

import "fmt"

// Array is an N-dimensional array in the simulated address space.
//
// Dims gives the logical extents; Elem the element size in bytes. Order is a
// permutation of the dimension numbers, slowest-varying first: the classic
// row-major layout of a 2-D array is Order {0, 1} and column-major is
// {1, 0}. The compiler's data-layout pass mutates Order (via SetOrder) to
// implement memory-layout transformations without rewriting subscripts.
//
// An Array may carry backing integer data (see EnsureData) so that
// subscripted-subscript workloads (index arrays, hash buckets, page tables)
// can load real values through the simulator and use them to form further
// addresses, which is what makes their reference streams genuinely
// irregular.
type Array struct {
	Name string
	Base Addr
	Dims []int
	Elem int
	// Pad is an extra padding in elements added to the fastest-varying
	// dimension's extent when linearizing; array padding is a standard
	// conflict-miss mitigation and the paper's baseline applies it.
	Pad int

	order   []int
	strides []int64 // per logical dimension, in elements
	data    []int64 // optional backing data, logical linearization
}

// NewArray allocates an array with the given logical extents (row-major
// layout by default) from s. Elem must divide 8 or be a multiple of 8.
func NewArray(s *Space, name string, elem int, dims ...int) *Array {
	return NewPaddedArray(s, name, elem, 0, dims...)
}

// NewPaddedArray is NewArray with pad extra elements of padding on the
// fastest-varying dimension of the physical layout.
func NewPaddedArray(s *Space, name string, elem int, pad int, dims ...int) *Array {
	if len(dims) == 0 {
		panic("mem: array needs at least one dimension")
	}
	if elem <= 0 {
		panic(fmt.Sprintf("mem: array %s element size %d", name, elem))
	}
	n := 1
	for _, d := range dims {
		if d <= 0 {
			panic(fmt.Sprintf("mem: array %s dimension %d", name, d))
		}
		n *= d
	}
	a := &Array{
		Name: name,
		Dims: append([]int(nil), dims...),
		Elem: elem,
		Pad:  pad,
	}
	order := make([]int, len(dims))
	for i := range order {
		order[i] = i
	}
	a.setOrder(order)
	// Allocate the worst-case footprint once so that changing the layout
	// never moves the base address (the compiler's layout transformation
	// is applied before simulation starts, but keeping the footprint
	// stable keeps address-space accounting simple and deterministic).
	align := elem
	if align < 8 {
		align = 8
	}
	a.Base = s.Alloc(a.footprint(), align)
	return a
}

// footprint returns the byte size the array may need under any dimension
// order: padding lands on the fastest-varying dimension, so the worst case
// pads the dimension whose removal leaves the largest remaining product.
// Allocating the maximum keeps the base address stable across layout
// transformations.
func (a *Array) footprint() int {
	n := 1
	minDim := a.Dims[0]
	for _, d := range a.Dims {
		n *= d
		if d < minDim {
			minDim = d
		}
	}
	return (n + a.Pad*(n/minDim)) * a.Elem
}

// Order returns a copy of the current dimension order, slowest-varying
// first.
func (a *Array) Order() []int { return append([]int(nil), a.order...) }

// SetOrder installs a new dimension order. It panics unless order is a
// permutation of 0..len(Dims)-1. Backing data, if any, is preserved: data is
// stored against logical indices and is therefore layout-independent.
func (a *Array) SetOrder(order []int) {
	if len(order) != len(a.Dims) {
		panic(fmt.Sprintf("mem: array %s order length %d want %d", a.Name, len(order), len(a.Dims)))
	}
	seen := make([]bool, len(order))
	for _, d := range order {
		if d < 0 || d >= len(order) || seen[d] {
			panic(fmt.Sprintf("mem: array %s order %v is not a permutation", a.Name, order))
		}
		seen[d] = true
	}
	a.setOrder(order)
}

func (a *Array) setOrder(order []int) {
	a.order = append(a.order[:0], order...)
	if a.strides == nil {
		a.strides = make([]int64, len(a.Dims))
	}
	stride := int64(1)
	for i := len(order) - 1; i >= 0; i-- {
		dim := order[i]
		a.strides[dim] = stride
		extent := int64(a.Dims[dim])
		if i == len(order)-1 {
			extent += int64(a.Pad)
		}
		stride *= extent
	}
}

// Stride returns the element stride of logical dimension dim under the
// current layout.
func (a *Array) Stride(dim int) int64 { return a.strides[dim] }

// Len returns the number of logical elements.
func (a *Array) Len() int {
	n := 1
	for _, d := range a.Dims {
		n *= d
	}
	return n
}

// linear maps logical indices to the physical element offset under the
// current layout.
func (a *Array) linear(idx []int) int64 {
	if len(idx) != len(a.Dims) {
		panic(fmt.Sprintf("mem: array %s indexed with %d subscripts, has %d dims", a.Name, len(idx), len(a.Dims)))
	}
	var off int64
	for d, i := range idx {
		if i < 0 || i >= a.Dims[d] {
			panic(fmt.Sprintf("mem: array %s index %d out of range [0,%d) in dim %d", a.Name, i, a.Dims[d], d))
		}
		off += int64(i) * a.strides[d]
	}
	return off
}

// logicalLinear maps logical indices to the layout-independent linearization
// used for backing data.
func (a *Array) logicalLinear(idx []int) int {
	off := 0
	for d, i := range idx {
		off = off*a.Dims[d] + i
	}
	return off
}

// Addr returns the simulated address of the element at the given logical
// indices under the current layout.
func (a *Array) Addr(idx ...int) Addr {
	return a.Base + Addr(a.linear(idx)*int64(a.Elem))
}

// AccessSize returns the access size to use for a single element, capped at
// 8 bytes (wider elements are accessed as their leading word, which is how
// a word-oriented pipeline touches them and keeps block-utilisation
// modelling honest).
func (a *Array) AccessSize() uint8 {
	if a.Elem >= 8 {
		return 8
	}
	return uint8(a.Elem)
}

// EnsureData allocates (once) backing data storage for the array.
func (a *Array) EnsureData() {
	if a.data == nil {
		a.data = make([]int64, a.Len())
	}
}

// SetData stores v as the backing value of the element at idx. The array
// must carry backing data (EnsureData).
func (a *Array) SetData(v int64, idx ...int) {
	a.EnsureData()
	a.data[a.logicalLinear(idx)] = v
}

// Data returns the backing value of the element at idx (zero if the array
// has no backing data).
func (a *Array) Data(idx ...int) int64 {
	if a.data == nil {
		return 0
	}
	return a.data[a.logicalLinear(idx)]
}
