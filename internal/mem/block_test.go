package mem

import "testing"

func TestEventBlockCapacityFloor(t *testing.T) {
	for _, n := range []int{-5, 0, 1} {
		if got := NewEventBlock(n).Cap(); got != 1 {
			t.Errorf("NewEventBlock(%d).Cap() = %d, want 1", n, got)
		}
	}
	b := NewEventBlock(16)
	if b.Cap() != 16 || b.Len() != 0 {
		t.Fatalf("new block len/cap = %d/%d, want 0/16", b.Len(), b.Cap())
	}
	if len(b.Addr) != 16 || len(b.Size) != 16 || len(b.Write) != 16 ||
		len(b.N) != 16 || len(b.Count) != 16 {
		t.Fatal("column lengths disagree with capacity")
	}
}

func TestEventBlockSetLenBounds(t *testing.T) {
	b := NewEventBlock(4)
	for _, n := range []int{0, 1, 4} {
		b.SetLen(n)
		if b.Len() != n {
			t.Fatalf("SetLen(%d); Len() = %d", n, b.Len())
		}
	}
	for _, n := range []int{-1, 5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SetLen(%d) did not panic", n)
				}
			}()
			b.SetLen(n)
		}()
	}
}

func TestEventBlockEmitReference(t *testing.T) {
	b := NewEventBlock(8)
	// marker-on, read, folded compute run (3 × Compute(5)), write,
	// marker-off; the remaining capacity stays outside Len.
	b.Kind[0] = EvMarkerOn
	b.Kind[1] = EvAccess
	b.Addr[1], b.Size[1], b.Write[1] = 0x1000, 8, false
	b.Kind[2] = EvCompute
	b.N[2], b.Count[2] = 5, 3
	b.Kind[3] = EvAccess
	b.Addr[3], b.Size[3], b.Write[3] = 0x2000, 4, true
	b.Kind[4] = EvMarkerOff
	// Stale garbage beyond Len must not be replayed.
	b.Kind[5] = EvAccess
	b.Addr[5] = 0xdead
	b.SetLen(5)

	var c CountingEmitter
	b.Emit(&c)
	if c.Reads != 1 || c.Writes != 1 {
		t.Fatalf("reads=%d writes=%d, want 1/1", c.Reads, c.Writes)
	}
	if c.Markers != 2 || c.OnMarkers != 1 {
		t.Fatalf("markers=%d on=%d, want 2/1", c.Markers, c.OnMarkers)
	}
	// 2 access instructions + 2 marker instructions + 3 runs of Compute(5).
	if want := uint64(2 + 2 + 3*5); c.Instructions != want {
		t.Fatalf("instructions=%d, want %d", c.Instructions, want)
	}
}
