package mem

import (
	"testing"
	"testing/quick"
)

func TestSpaceAllocAlignmentAndNonOverlap(t *testing.T) {
	s := NewSpace()
	type region struct {
		base Addr
		size int
	}
	var regions []region
	sizes := []int{1, 7, 8, 64, 4096, 100000}
	aligns := []int{1, 2, 8, 64, 4096}
	for i, size := range sizes {
		align := aligns[i%len(aligns)]
		base := s.Alloc(size, align)
		if uint64(base)%uint64(align) != 0 {
			t.Errorf("alloc %d: base %#x not aligned to %d", i, base, align)
		}
		for _, r := range regions {
			if base < r.base+Addr(r.size) && r.base < base+Addr(size) {
				t.Errorf("alloc %d overlaps earlier region", i)
			}
		}
		regions = append(regions, region{base, size})
	}
}

func TestSpaceAllocPanics(t *testing.T) {
	s := NewSpace()
	for _, tc := range []struct{ size, align int }{
		{0, 8}, {-1, 8}, {8, 0}, {8, 3}, {8, -4},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Alloc(%d, %d): expected panic", tc.size, tc.align)
				}
			}()
			s.Alloc(tc.size, tc.align)
		}()
	}
}

func TestSpaceDeterminism(t *testing.T) {
	a, b := NewSpace(), NewSpace()
	for i := 0; i < 20; i++ {
		if x, y := a.Alloc(100+i, 8), b.Alloc(100+i, 8); x != y {
			t.Fatalf("alloc %d: %#x != %#x", i, x, y)
		}
	}
}

func TestArrayAddressing(t *testing.T) {
	s := NewSpace()
	a := NewArray(s, "A", 8, 4, 6)
	// Row-major: [i][j] at base + (i*6+j)*8.
	for i := 0; i < 4; i++ {
		for j := 0; j < 6; j++ {
			want := a.Base + Addr((i*6+j)*8)
			if got := a.Addr(i, j); got != want {
				t.Fatalf("Addr(%d,%d) = %#x, want %#x", i, j, got, want)
			}
		}
	}
	// Column-major after SetOrder.
	a.SetOrder([]int{1, 0})
	for i := 0; i < 4; i++ {
		for j := 0; j < 6; j++ {
			want := a.Base + Addr((j*4+i)*8)
			if got := a.Addr(i, j); got != want {
				t.Fatalf("col-major Addr(%d,%d) = %#x, want %#x", i, j, got, want)
			}
		}
	}
}

func TestArrayLayoutBijective(t *testing.T) {
	// Property: under any dimension order, distinct logical indices map
	// to distinct addresses within the allocated footprint.
	s := NewSpace()
	a := NewPaddedArray(s, "B", 8, 3, 5, 7, 3)
	orders := [][]int{{0, 1, 2}, {2, 1, 0}, {1, 0, 2}, {2, 0, 1}, {0, 2, 1}, {1, 2, 0}}
	for _, ord := range orders {
		a.SetOrder(ord)
		seen := map[Addr][3]int{}
		for i := 0; i < 5; i++ {
			for j := 0; j < 7; j++ {
				for k := 0; k < 3; k++ {
					addr := a.Addr(i, j, k)
					if prev, dup := seen[addr]; dup {
						t.Fatalf("order %v: %v and %v share address %#x", ord, prev, [3]int{i, j, k}, addr)
					}
					seen[addr] = [3]int{i, j, k}
					if addr < a.Base || addr >= a.Base+Addr(a.footprint()) {
						t.Fatalf("order %v: address %#x outside footprint", ord, addr)
					}
				}
			}
		}
	}
}

func TestArrayPaddingSeparatesLines(t *testing.T) {
	s := NewSpace()
	a := NewPaddedArray(s, "P", 8, 2, 4, 4)
	// Pad applies to the fastest dimension: row stride is 4+2 elements.
	if got, want := a.Addr(1, 0)-a.Addr(0, 0), Addr(6*8); got != want {
		t.Fatalf("padded row stride = %d, want %d", got, want)
	}
}

func TestArrayDataLayoutIndependent(t *testing.T) {
	s := NewSpace()
	a := NewArray(s, "D", 8, 3, 3)
	a.SetData(42, 1, 2)
	a.SetOrder([]int{1, 0})
	if got := a.Data(1, 2); got != 42 {
		t.Fatalf("backing data moved with layout: got %d", got)
	}
	if got := a.Data(2, 1); got != 0 {
		t.Fatalf("transposed element unexpectedly %d", got)
	}
}

func TestArraySetOrderRejectsNonPermutations(t *testing.T) {
	s := NewSpace()
	a := NewArray(s, "E", 8, 2, 2)
	for _, ord := range [][]int{{0}, {0, 0}, {1, 2}, {-1, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SetOrder(%v): expected panic", ord)
				}
			}()
			a.SetOrder(ord)
		}()
	}
}

func TestArrayStrideQuick(t *testing.T) {
	// Property: Addr differences along one dimension equal
	// Stride(dim)*Elem regardless of layout.
	f := func(colMajor bool, i, j uint8) bool {
		s := NewSpace()
		a := NewArray(s, "Q", 8, 16, 16)
		if colMajor {
			a.SetOrder([]int{1, 0})
		}
		ii, jj := int(i%15), int(j%15)
		d0 := int64(a.Addr(ii+1, jj)) - int64(a.Addr(ii, jj))
		d1 := int64(a.Addr(ii, jj+1)) - int64(a.Addr(ii, jj))
		return d0 == a.Stride(0)*8 && d1 == a.Stride(1)*8
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCountingEmitter(t *testing.T) {
	var c CountingEmitter
	c.Access(0x1000, 8, false)
	c.Access(0x1008, 8, true)
	c.Compute(10)
	c.Marker(true)
	c.Marker(false)
	if c.Reads != 1 || c.Writes != 1 {
		t.Fatalf("reads=%d writes=%d", c.Reads, c.Writes)
	}
	if c.Accesses() != 2 {
		t.Fatalf("accesses=%d", c.Accesses())
	}
	if c.Instructions != 2+10+2 {
		t.Fatalf("instructions=%d", c.Instructions)
	}
	if c.Markers != 2 || c.OnMarkers != 1 {
		t.Fatalf("markers=%d on=%d", c.Markers, c.OnMarkers)
	}
}

func TestScalar(t *testing.T) {
	s := NewSpace()
	a := NewScalar(s, "x", 8)
	b := NewScalar(s, "y", 4)
	if a.Addr == b.Addr {
		t.Fatal("scalars share an address")
	}
	if a.Size != 8 || b.Size != 4 {
		t.Fatal("scalar sizes wrong")
	}
}
