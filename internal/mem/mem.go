// Package mem provides the simulated virtual address space that every
// workload in this repository executes against.
//
// Workloads do not touch real memory: they allocate arrays and scalars from
// a Space and *emit* the loads and stores they would perform to an Emitter
// (usually the cache-hierarchy simulator in internal/sim). Arrays carry an
// explicit dimension order so that the compiler's data-layout transformations
// (internal/opt) can change the memory layout of an array without touching
// the code that indexes it, exactly as a layout-transforming compiler would.
package mem

import "fmt"

// Addr is a simulated virtual address.
type Addr uint64

// Emitter consumes the dynamic event stream of a simulated program run:
// memory accesses, bursts of non-memory instructions, and the special
// activate/deactivate instructions that gate the hardware locality
// optimization at run time.
//
// The cache simulator implements Emitter; tests frequently implement it with
// small recording sinks.
type Emitter interface {
	// Access simulates one load (write=false) or store (write=true) of
	// size bytes at addr. Size is a power of two no larger than 8.
	Access(addr Addr, size uint8, write bool)

	// Compute accounts for n non-memory instructions (ALU, branches,
	// address arithmetic). It advances simulated time but touches no
	// cache state.
	Compute(n int)

	// Marker simulates an activate (on=true) or deactivate (on=false)
	// instruction for the hardware optimization mechanism. It costs one
	// instruction slot.
	Marker(on bool)
}

// CountingEmitter is a trivial Emitter that tallies events. It is useful in
// tests and for cheap dry runs (for example, instruction counting without
// cache simulation).
type CountingEmitter struct {
	Reads, Writes uint64
	Instructions  uint64
	Markers       uint64
	OnMarkers     uint64
}

// Access implements Emitter.
func (c *CountingEmitter) Access(_ Addr, _ uint8, write bool) {
	if write {
		c.Writes++
	} else {
		c.Reads++
	}
	c.Instructions++
}

// Compute implements Emitter.
func (c *CountingEmitter) Compute(n int) { c.Instructions += uint64(n) }

// Marker implements Emitter.
func (c *CountingEmitter) Marker(on bool) {
	c.Markers++
	if on {
		c.OnMarkers++
	}
	c.Instructions++
}

// Accesses returns the total number of memory accesses recorded.
func (c *CountingEmitter) Accesses() uint64 { return c.Reads + c.Writes }

// Space is an allocator for the simulated virtual address space.
//
// The zero value is not ready for use; call NewSpace. Allocations never
// overlap and never straddle address zero, so a zero Addr can be used as a
// sentinel. Between allocations the allocator inserts deterministic
// pseudo-random page-granular gaps, mimicking the scattered layout a real
// process image has (separate mmap regions, heap fragmentation). The
// scatter matters for fidelity: hardware structures indexed by physical
// address bits — cache sets, the MAT's direct-mapped macro-block entries,
// TLB sets — alias between regions in real runs, and a dense bump layout
// would hide that.
type Space struct {
	next Addr
	seq  uint64
}

// spaceBase is the first allocatable address. Keeping it well above zero
// makes accidental zero-address accesses detectable and mirrors the layout
// of a real process image.
const spaceBase Addr = 0x0001_0000

// NewSpace returns an empty address space.
func NewSpace() *Space {
	return &Space{next: spaceBase}
}

// Alloc reserves size bytes aligned to align (a power of two) and returns the
// base address. Alloc panics on a non-positive size or a non-power-of-two
// alignment, since both indicate a workload construction bug.
func (s *Space) Alloc(size int, align int) Addr {
	if size <= 0 {
		panic(fmt.Sprintf("mem: Alloc size %d", size))
	}
	if align <= 0 || align&(align-1) != 0 {
		panic(fmt.Sprintf("mem: Alloc align %d not a power of two", align))
	}
	// Deterministic scatter: 0–96 pages of slack per allocation.
	s.seq = s.seq*6364136223846793005 + 1442695040888963407
	gap := Addr((s.seq >> 33) % 97 * 4096)
	s.next += gap
	a := Addr(align)
	s.next = (s.next + a - 1) &^ (a - 1)
	base := s.next
	s.next += Addr(size)
	return base
}

// Used reports the number of bytes allocated so far.
func (s *Space) Used() uint64 { return uint64(s.next - spaceBase) }

// Scalar is a named scalar variable with a fixed address. Scalars are always
// analyzable references in the compiler's classification.
type Scalar struct {
	Name string
	Addr Addr
	Size uint8
}

// NewScalar allocates a scalar of size bytes in s.
func NewScalar(s *Space, name string, size uint8) *Scalar {
	return &Scalar{Name: name, Addr: s.Alloc(int(size), int(size)), Size: size}
}
