// Package mem provides the simulated virtual address space that every
// workload in this repository executes against.
//
// Workloads do not touch real memory: they allocate arrays and scalars from
// a Space and *emit* the loads and stores they would perform to an Emitter
// (usually the cache-hierarchy simulator in internal/sim). Arrays carry an
// explicit dimension order so that the compiler's data-layout transformations
// (internal/opt) can change the memory layout of an array without touching
// the code that indexes it, exactly as a layout-transforming compiler would.
package mem

import "fmt"

// Addr is a simulated virtual address.
type Addr uint64

// Emitter consumes the dynamic event stream of a simulated program run:
// memory accesses, bursts of non-memory instructions, and the special
// activate/deactivate instructions that gate the hardware locality
// optimization at run time.
//
// The cache simulator implements Emitter; tests frequently implement it with
// small recording sinks.
type Emitter interface {
	// Access simulates one load (write=false) or store (write=true) of
	// size bytes at addr. Size is a power of two no larger than 8.
	Access(addr Addr, size uint8, write bool)

	// Compute accounts for n non-memory instructions (ALU, branches,
	// address arithmetic). It advances simulated time but touches no
	// cache state.
	Compute(n int)

	// Marker simulates an activate (on=true) or deactivate (on=false)
	// instruction for the hardware optimization mechanism. It costs one
	// instruction slot.
	Marker(on bool)
}

// Event kind codes for an EventBlock's Kind column. The values match the
// low two bits of internal/trace's packed event words, so trace decoding
// into a block is a mask, not a translation table.
const (
	EvCompute   uint8 = 0
	EvMarkerOn  uint8 = 1
	EvMarkerOff uint8 = 2
	EvAccess    uint8 = 3
)

// EventBlock is a fixed-capacity struct-of-arrays batch of simulated
// events. Column i describes event i; only the columns meaningful for
// Kind[i] hold defined values (Addr/Size/Write for EvAccess, N/Count for
// EvCompute — producers may write the other columns too, but their contents
// are unspecified).
//
// Blocks are plain reusable buffers: one per replay (or per sweep worker,
// via parallel.Arena) is enough, and reusing one across replays is the
// point — the batched engine never materializes a whole stream in SoA form.
type EventBlock struct {
	// Kind holds the event kind codes (Ev*).
	Kind []uint8
	// Addr, Size, Write are the access columns.
	Addr  []Addr
	Size  []uint8
	Write []bool
	// N and Count are the compute-run columns: Count[i] calls of
	// Compute(N[i]). A folded run occupies one block slot regardless of
	// its length.
	N     []int32
	Count []uint32

	n int
}

// NewEventBlock returns a block with capacity for events decoded events per
// fill. Capacities below 1 fall back to 1.
func NewEventBlock(events int) *EventBlock {
	if events < 1 {
		events = 1
	}
	return &EventBlock{
		Kind:  make([]uint8, events),
		Addr:  make([]Addr, events),
		Size:  make([]uint8, events),
		Write: make([]bool, events),
		N:     make([]int32, events),
		Count: make([]uint32, events),
	}
}

// Len reports how many events the last fill decoded into the block.
func (b *EventBlock) Len() int { return b.n }

// Cap reports the block's event capacity.
func (b *EventBlock) Cap() int { return len(b.Kind) }

// SetLen declares the first n column slots valid. Producers call it after
// filling the columns; n must not exceed Cap.
func (b *EventBlock) SetLen(n int) {
	if n < 0 || n > b.Cap() {
		panic(fmt.Sprintf("mem: SetLen(%d) outside block capacity %d", n, b.Cap()))
	}
	b.n = n
}

// Emit replays the block's events against a scalar emitter, in order. It is
// the reference consumer BatchEmitter implementations are validated
// against.
func (b *EventBlock) Emit(em Emitter) {
	for i := 0; i < b.n; i++ {
		switch b.Kind[i] {
		case EvAccess:
			em.Access(b.Addr[i], b.Size[i], b.Write[i])
		case EvCompute:
			for c := uint32(0); c < b.Count[i]; c++ {
				em.Compute(int(b.N[i]))
			}
		case EvMarkerOn:
			em.Marker(true)
		case EvMarkerOff:
			em.Marker(false)
		}
	}
}

// BatchEmitter is an Emitter that additionally accepts whole columnar
// event blocks. EmitBlock(b) is semantically identical to b.Emit(em) — the
// same events in the same order — and implementations must produce
// bit-identical state and statistics either way (float accumulation order
// included).
//
// The block form exists purely for speed: a consumer that implements
// BatchEmitter receives one call per block instead of one dynamic dispatch
// per event, and can split the pure per-event math (set indices, tags, page
// numbers) into tight columnar loops ahead of its stateful walk.
// trace.Trace.Replay detects the interface and routes replays through it.
type BatchEmitter interface {
	Emitter

	// EmitBlock consumes the block's events in order. The block and its
	// columns are owned by the caller; implementations must not retain
	// them past the call.
	EmitBlock(b *EventBlock)
}

// CountingEmitter is a trivial Emitter that tallies events. It is useful in
// tests and for cheap dry runs (for example, instruction counting without
// cache simulation).
type CountingEmitter struct {
	Reads, Writes uint64
	Instructions  uint64
	Markers       uint64
	OnMarkers     uint64
}

// Access implements Emitter.
func (c *CountingEmitter) Access(_ Addr, _ uint8, write bool) {
	if write {
		c.Writes++
	} else {
		c.Reads++
	}
	c.Instructions++
}

// Compute implements Emitter.
func (c *CountingEmitter) Compute(n int) { c.Instructions += uint64(n) }

// Marker implements Emitter.
func (c *CountingEmitter) Marker(on bool) {
	c.Markers++
	if on {
		c.OnMarkers++
	}
	c.Instructions++
}

// Accesses returns the total number of memory accesses recorded.
func (c *CountingEmitter) Accesses() uint64 { return c.Reads + c.Writes }

// Space is an allocator for the simulated virtual address space.
//
// The zero value is not ready for use; call NewSpace. Allocations never
// overlap and never straddle address zero, so a zero Addr can be used as a
// sentinel. Between allocations the allocator inserts deterministic
// pseudo-random page-granular gaps, mimicking the scattered layout a real
// process image has (separate mmap regions, heap fragmentation). The
// scatter matters for fidelity: hardware structures indexed by physical
// address bits — cache sets, the MAT's direct-mapped macro-block entries,
// TLB sets — alias between regions in real runs, and a dense bump layout
// would hide that.
type Space struct {
	next Addr
	seq  uint64
}

// spaceBase is the first allocatable address. Keeping it well above zero
// makes accidental zero-address accesses detectable and mirrors the layout
// of a real process image.
const spaceBase Addr = 0x0001_0000

// NewSpace returns an empty address space.
func NewSpace() *Space {
	return &Space{next: spaceBase}
}

// Alloc reserves size bytes aligned to align (a power of two) and returns the
// base address. Alloc panics on a non-positive size or a non-power-of-two
// alignment, since both indicate a workload construction bug.
func (s *Space) Alloc(size int, align int) Addr {
	if size <= 0 {
		panic(fmt.Sprintf("mem: Alloc size %d", size))
	}
	if align <= 0 || align&(align-1) != 0 {
		panic(fmt.Sprintf("mem: Alloc align %d not a power of two", align))
	}
	// Deterministic scatter: 0–96 pages of slack per allocation.
	s.seq = s.seq*6364136223846793005 + 1442695040888963407
	gap := Addr((s.seq >> 33) % 97 * 4096)
	s.next += gap
	a := Addr(align)
	s.next = (s.next + a - 1) &^ (a - 1)
	base := s.next
	s.next += Addr(size)
	return base
}

// Used reports the number of bytes allocated so far.
func (s *Space) Used() uint64 { return uint64(s.next - spaceBase) }

// Scalar is a named scalar variable with a fixed address. Scalars are always
// analyzable references in the compiler's classification.
type Scalar struct {
	Name string
	Addr Addr
	Size uint8
}

// NewScalar allocates a scalar of size bytes in s.
func NewScalar(s *Space, name string, size uint8) *Scalar {
	return &Scalar{Name: name, Addr: s.Alloc(int(size), int(size)), Size: size}
}
