package selcache_test

import (
	"testing"

	"selcache"
)

func TestFacadeEndToEnd(t *testing.T) {
	w, ok := selcache.BenchmarkByName("vpenta")
	if !ok {
		t.Fatal("vpenta missing")
	}
	o := selcache.DefaultOptions()
	results := selcache.RunAll(w.Build, o)
	if len(results) != 5 {
		t.Fatalf("%d results", len(results))
	}
	base := results[0]
	sel := results[4]
	if sel.Version != selcache.Selective {
		t.Fatalf("last result is %v", sel.Version)
	}
	if imp := selcache.Improvement(base, sel); imp < 20 {
		t.Fatalf("selective improvement %.2f%% on vpenta", imp)
	}
}

func TestFacadeBenchmarkList(t *testing.T) {
	if got := len(selcache.Benchmarks()); got != 13 {
		t.Fatalf("%d benchmarks", got)
	}
	if len(selcache.Versions()) != 5 {
		t.Fatal("versions")
	}
	if selcache.BaseMachine().MemLat != 100 {
		t.Fatal("base machine latency")
	}
}

func TestFacadeMechanisms(t *testing.T) {
	w, _ := selcache.BenchmarkByName("perl")
	o := selcache.DefaultOptions()
	o.Mechanism = selcache.HWVictim
	r := selcache.Run(w.Build, selcache.PureHardware, o)
	if r.Sim.Victim1.Probes == 0 {
		t.Fatal("victim mechanism did not engage via facade")
	}
}
