// Dbquery: assemble an analytical query over the in-memory relational
// substrate — a predicated scan feeding a hash-join probe — and compare the
// four schemes on it. This mirrors how the paper's TPC workloads are built
// and shows the region detector splitting a query plan into a
// compiler-owned scan phase and a hardware-owned probe phase.
//
//	go run ./examples/dbquery
package main

import (
	"fmt"

	"selcache/internal/core"
	"selcache/internal/db"
	"selcache/internal/loopir"
	"selcache/internal/mem"
)

const (
	nOrders    = 24576
	nCustomers = 4096
	reps       = 3
)

func build() *loopir.Program {
	sp := mem.NewSpace()
	rng := db.NewRNG(0xE8A17)
	orders := db.GenOrders(sp, rng, nOrders, nCustomers)
	cust := db.GenCustomer(sp, rng, nCustomers)
	custIdx := db.NewHashIndex(sp, cust, "custkey", 1<<12)
	for r := 0; r < cust.Rows(); r++ {
		custIdx.InsertQuiet(r)
	}
	qual := mem.NewArray(sp, "qual", 8, nOrders, 1)
	qual.EnsureData()
	revenue := mem.NewScalar(sp, "revenue", 8)

	prog := &loopir.Program{Name: "dbquery"}
	for rep := 0; rep < reps; rep++ {
		s := fmt.Sprintf("%d", rep)

		// Phase 1 (analyzable): predicated column scan writing the
		// qualification vector. The compiler may re-lay the row-store
		// into a column store for it.
		scan := &loopir.Stmt{Name: "scan", Compute: 6, Refs: []loopir.Ref{
			orders.ScanRef("r"+s, "orderdate", false),
			orders.ScanRef("r"+s, "totalprice", false),
			orders.ScanRef("r"+s, "shippriority", false),
			loopir.AffineRef(qual, true, loopir.VarExpr("r"+s), loopir.ConstExpr(0)),
			loopir.ScalarRef(revenue, false),
			loopir.ScalarRef(revenue, true),
		}}
		for r := 0; r < nOrders; r++ {
			q := int64(0)
			if orders.Get(r, "orderdate") < db.DateEpochDays/3 && orders.Get(r, "shippriority") > 2 {
				q = 1
			}
			qual.SetData(q, r, 0)
		}
		prog.Body = append(prog.Body, loopir.ForLoop("r"+s, nOrders, scan))

		// Phase 2 (irregular): probe the customer index for qualifying
		// orders.
		probe := &loopir.Stmt{
			Name: "probe",
			Refs: []loopir.Ref{
				loopir.OpaqueRef(loopir.ClassPointer, qual, false),
				loopir.OpaqueRef(loopir.ClassIndexed, custIdx.Buckets, false),
				loopir.OpaqueRef(loopir.ClassIndexed, cust.Cells, false),
			},
			Run: func(ctx *loopir.Ctx) {
				r := ctx.V("p" + s)
				ctx.Compute(2)
				if ctx.LoadVal(qual, r, 0) == 0 {
					return
				}
				if row, ok := custIdx.Lookup(ctx, orders.Get(r, "custkey")); ok {
					cust.LoadVal(ctx, row, "mktsegment")
				}
			},
		}
		prog.Body = append(prog.Body, loopir.ForLoop("p"+s, nOrders, probe))
	}
	return prog
}

func main() {
	o := core.DefaultOptions()
	base := core.Run(build, core.Base, o)
	fmt.Printf("query plan: %d-row scan + hash probe, %d executions\n", nOrders, reps)
	fmt.Printf("%-14s %14s %9s %10s\n", "version", "cycles", "L1 miss", "improv")
	for _, v := range core.Versions() {
		r := core.Run(build, v, o)
		fmt.Printf("%-14s %14d %8.2f%% %9.2f%%\n",
			v, r.Sim.Cycles, 100*r.Sim.L1.MissRate(), core.Improvement(base, r))
	}
	sel := core.Run(build, core.Selective, o)
	fmt.Printf("\nlayout changes by the compiler (row-store -> column-store): %d\n",
		sel.Opt.LayoutsChanged)
	fmt.Printf("dynamic ON/OFF instructions executed: %d\n", sel.Sim.Markers)
}
