// Stencil: build a custom loop-nest program against the public IR, watch
// the region detector and the compiler work on it, and simulate the result.
//
// The kernel is a classic 5-point Jacobi sweep written in the
// column-hostile order, followed by an irregular boundary fix-up through an
// index list — a miniature mixed program like the ones the paper targets.
//
//	go run ./examples/stencil
package main

import (
	"fmt"

	"selcache/internal/core"
	"selcache/internal/loopir"
	"selcache/internal/mem"
)

const n = 192

func build() *loopir.Program {
	sp := mem.NewSpace()
	grid := mem.NewPaddedArray(sp, "grid", 8, 1, n, n)
	next := mem.NewPaddedArray(sp, "next", 8, 1, n, n)
	// Irregular boundary list: indices of cells needing fix-up.
	blist := mem.NewArray(sp, "boundary", 8, 4*n, 1)
	blist.EnsureData()
	for i := 0; i < 4*n; i++ {
		blist.SetData(int64(i*37%(n*n)), i, 0)
	}

	v := loopir.VarExpr
	jacobi := &loopir.Stmt{Name: "jacobi", Compute: 6, Refs: []loopir.Ref{
		loopir.AffineRef(next, true, v("i"), v("j")),
		loopir.AffineRef(grid, false, v("i"), v("j")),
		loopir.AffineRef(grid, false, loopir.AxPlusB(1, "i", 1), v("j")),
		loopir.AffineRef(grid, false, loopir.AxPlusB(1, "i", -1), v("j")),
		loopir.AffineRef(grid, false, v("i"), loopir.AxPlusB(1, "j", 1)),
		loopir.AffineRef(grid, false, v("i"), loopir.AxPlusB(1, "j", -1)),
	}}

	fixup := &loopir.Stmt{
		Name: "boundary-fixup",
		Refs: []loopir.Ref{
			loopir.OpaqueRef(loopir.ClassIndexed, blist, false),
			loopir.OpaqueRef(loopir.ClassIndexed, next, true),
		},
		Run: func(ctx *loopir.Ctx) {
			b := ctx.V("b")
			cell := int(ctx.LoadVal(blist, b, 0))
			ctx.Compute(3)
			ctx.Store(next, cell/n, cell%n)
		},
	}

	prog := &loopir.Program{Name: "stencil"}
	for step := 0; step < 6; step++ {
		s := fmt.Sprintf("%d", step)
		// Hostile order: i (dimension 0) innermost.
		prog.Body = append(prog.Body,
			loopir.ForRange("j"+s, loopir.ConstExpr(1), loopir.ConstExpr(n-1),
				loopir.ForRange("i"+s, loopir.ConstExpr(1), loopir.ConstExpr(n-1),
					renameVars(jacobi, "i", "i"+s, "j", "j"+s))),
			loopir.ForLoop("b"+s, 4*n, withB(fixup, "b"+s)),
		)
	}
	return prog
}

func renameVars(s *loopir.Stmt, pairs ...string) *loopir.Stmt {
	out := s.Clone().(*loopir.Stmt)
	for i := 0; i+1 < len(pairs); i += 2 {
		for ri := range out.Refs {
			for si := range out.Refs[ri].Subs {
				out.Refs[ri].Subs[si] = out.Refs[ri].Subs[si].Subst(pairs[i], loopir.VarExpr(pairs[i+1]))
			}
		}
	}
	return out
}

func withB(s *loopir.Stmt, alias string) *loopir.Stmt {
	inner := s.Run
	out := *s
	out.Run = func(ctx *loopir.Ctx) {
		ctx.Bind("b", ctx.V(alias))
		inner(ctx)
	}
	return &out
}

func main() {
	o := core.DefaultOptions()

	// Show what the compiler front end decides for this program.
	prog, rst, ost := core.Prepare(build, core.Selective, o)
	fmt.Println("selective-compiled program structure:")
	fmt.Print(prog.String())
	fmt.Printf("\nregions: hw=%d sw=%d mixed=%d, markers inserted=%d eliminated=%d\n",
		rst.HardwareLoops, rst.SoftwareLoops, rst.MixedLoops, rst.Inserted, rst.Eliminated)
	fmt.Printf("compiler: interchanged=%d layouts=%d tiled=%d unrolled=%d promoted=%d\n\n",
		ost.Interchanged, ost.LayoutsChanged, ost.Tiled, ost.Unrolled, ost.RefsPromoted)

	base := core.Run(build, core.Base, o)
	for _, v := range []core.Version{core.PureHardware, core.PureSoftware, core.Combined, core.Selective} {
		r := core.Run(build, v, o)
		fmt.Printf("%-14s cycles=%-11d improvement=%6.2f%%\n",
			v, r.Sim.Cycles, core.Improvement(base, r))
	}
}
