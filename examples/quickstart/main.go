// Quickstart: run one benchmark through the paper's four schemes and print
// the improvement of each over the base machine.
//
//	go run ./examples/quickstart [benchmark]
package main

import (
	"fmt"
	"os"

	"selcache"
)

func main() {
	name := "swim"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	w, ok := selcache.BenchmarkByName(name)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown benchmark %q; available:\n", name)
		for _, b := range selcache.Benchmarks() {
			fmt.Fprintf(os.Stderr, "  %-10s (%s) %s\n", b.Name, b.Class, b.Models)
		}
		os.Exit(1)
	}

	opts := selcache.DefaultOptions()
	fmt.Printf("benchmark %s (%s): %s\n", w.Name, w.Class, w.Models)
	fmt.Printf("machine: %s, mechanism: %s\n\n", opts.Machine.Name, opts.Mechanism)

	results := selcache.RunAll(w.Build, opts)
	base := results[0]
	fmt.Printf("%-14s %14s %9s %10s\n", "version", "cycles", "L1 miss", "improv")
	for _, r := range results {
		fmt.Printf("%-14s %14d %8.2f%% %9.2f%%\n",
			r.Version, r.Sim.Cycles, 100*r.Sim.L1.MissRate(), selcache.Improvement(base, r))
	}

	sel := results[4]
	if sel.Regions.Inserted > 0 {
		fmt.Printf("\nregion detection: %d hardware, %d software, %d mixed loops; "+
			"%d ON/OFF instructions inserted, %d eliminated as redundant\n",
			sel.Regions.HardwareLoops, sel.Regions.SoftwareLoops, sel.Regions.MixedLoops,
			sel.Regions.Inserted, sel.Regions.Eliminated)
	}
	if sel.Opt.NestsOptimized > 0 {
		fmt.Printf("compiler: %d nests optimized (%d interchanged, %d layouts changed, "+
			"%d tiled, %d unrolled, %d references promoted to registers)\n",
			sel.Opt.NestsOptimized, sel.Opt.Interchanged, sel.Opt.LayoutsChanged,
			sel.Opt.Tiled, sel.Opt.Unrolled, sel.Opt.RefsPromoted)
	}
}
