// Adaptive: compare the two hardware mechanisms (MAT/SLDT cache bypassing
// and victim caches) across the whole benchmark suite and all six machine
// configurations — the view behind the paper's Table 3 — and print where
// each mechanism wins.
//
//	go run ./examples/adaptive
package main

import (
	"fmt"

	"selcache"
	"selcache/internal/core"
	"selcache/internal/experiments"
	"selcache/internal/sim"
)

func main() {
	fmt.Println("selective scheme, bypass vs victim mechanism, base machine:")
	fmt.Printf("%-10s %12s %12s %8s\n", "benchmark", "sel/bypass", "sel/victim", "winner")

	ob := core.DefaultOptions()
	ob.Mechanism = sim.HWBypass
	ov := ob
	ov.Mechanism = sim.HWVictim

	bypass := experiments.RunSweep(ob, nil)
	victim := experiments.RunSweep(ov, nil)

	for i := range bypass.Rows {
		b := bypass.Rows[i].Improv[core.Selective]
		v := victim.Rows[i].Improv[core.Selective]
		winner := "bypass"
		if v > b+0.05 {
			winner = "victim"
		} else if b <= v+0.05 {
			winner = "tie"
		}
		fmt.Printf("%-10s %11.2f%% %11.2f%% %8s\n", bypass.Rows[i].Benchmark, b, v, winner)
	}
	fmt.Printf("%-10s %11.2f%% %11.2f%%\n\n", "average",
		bypass.Avg[core.Selective], victim.Avg[core.Selective])

	fmt.Println("averages across the six machine configurations (Table 3 view):")
	rows := selcache.Table3()
	fmt.Printf("%-16s %10s %10s\n", "experiment", "sel/bypass", "sel/victim")
	for _, r := range rows {
		fmt.Printf("%-16s %9.2f%% %9.2f%%\n", r.Config, r.SelectiveBypass, r.SelectiveVictim)
	}
}
