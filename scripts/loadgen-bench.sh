#!/bin/sh
# loadgen-bench regenerates the committed BENCH_loadgen.json: one
# deterministic traffic plan measured across the four serving regimes.
#
#   cold      coordinator + one worker, empty caches: cells execute on the
#             worker (remote tier) and both nodes' caches fill;
#   warm      the same plan again: the coordinator answers from memory;
#   peer      the coordinator is REPLACED (fresh process, cold cache) but
#             the worker keeps its cache: first touches are served by one
#             bounded peer fetch from the ring owner, no execution;
#   overload  the worker is gone and the replacement coordinator is narrow
#             (1 worker slot, 2 backlog slots): a burst of expensive
#             never-cached cells must shed with 429 + Retry-After.
#
# The artifact carries per-cell response-body hashes, so byte-identity of
# served results across all four regimes — and across the two coordinator
# processes — is validated, not assumed. Wall times and throughput are
# host measurements and vary run to run; the schema, tier counts, shed
# behaviour and hashes are what CI-facing validation checks.
set -eu

SELCACHED=${1:?usage: loadgen-bench.sh <selcached-binary> <loadgen-binary> [out.json]}
LOADGEN=${2:?usage: loadgen-bench.sh <selcached-binary> <loadgen-binary> [out.json]}
OUT=${3:-BENCH_loadgen.json}
DIR=$(mktemp -d)
C1_PID= C2_PID= W_PID=
cleanup() {
    for pid in $C1_PID $C2_PID $W_PID; do
        kill "$pid" 2>/dev/null || true
    done
    rm -rf "$DIR"
}
trap cleanup EXIT

wait_addr() {
    _addr=
    for _ in $(seq 1 50); do
        _addr=$(sed -n 's/^selcached: listening on \([^ ]*\).*/\1/p' "$1")
        [ -n "$_addr" ] && break
        kill -0 "$2" 2>/dev/null || { echo "loadgen-bench: daemon died at boot" >&2; cat "$1" >&2; exit 1; }
        sleep 0.1
    done
    [ -n "$_addr" ] || { echo "loadgen-bench: daemon never bound" >&2; cat "$1" >&2; exit 1; }
    echo "$_addr"
}

# wait_workers ADDR N -> blocks until the coordinator reports N live workers.
wait_workers() {
    for _ in $(seq 1 100); do
        case $(curl -fsS "http://$1/v1/cluster/status" 2>/dev/null || true) in
        *"\"live_workers\":$2"*) return 0 ;;
        esac
        sleep 0.1
    done
    echo "loadgen-bench: coordinator at $1 never reached live_workers=$2" >&2
    exit 1
}

LG_ARGS="-seed 1 -requests 60 -cells 24 -rate 50 -overload-requests 40"

# Phase cold + warm: coordinator C1 with one worker holding every shard.
"$SELCACHED" -addr 127.0.0.1:0 -workers 2 -health-interval 250ms 2>"$DIR/c1.log" &
C1_PID=$!
C1_ADDR=$(wait_addr "$DIR/c1.log" "$C1_PID")
"$SELCACHED" -addr 127.0.0.1:0 -workers 2 -worker -join "http://$C1_ADDR" -health-interval 250ms 2>"$DIR/w.log" &
W_PID=$!
W_ADDR=$(wait_addr "$DIR/w.log" "$W_PID")
wait_workers "$C1_ADDR" 1

"$LOADGEN" -addr "http://$C1_ADDR" $LG_ARGS -phases cold,warm -out "$OUT"

# Phase peer: replace the coordinator. C2 boots with a cold cache and a
# narrow pool; the worker's cache is the only copy of the results, so
# first touches must come back through the peer tier.
kill -TERM "$C1_PID" && wait "$C1_PID" 2>/dev/null || true
C1_PID=
"$SELCACHED" -addr 127.0.0.1:0 -workers 1 -max-backlog 2 -health-interval 250ms 2>"$DIR/c2.log" &
C2_PID=$!
C2_ADDR=$(wait_addr "$DIR/c2.log" "$C2_PID")
curl -fsS -X POST "http://$C2_ADDR/v1/cluster/join" -d "{\"addr\":\"http://$W_ADDR\"}" >/dev/null
wait_workers "$C2_ADDR" 1

"$LOADGEN" -addr "http://$C2_ADDR" $LG_ARGS -phases peer -append -out "$OUT"

# Phase overload: take the worker away and burst expensive uncached cells
# at the narrow coordinator until it sheds.
kill -TERM "$W_PID" && wait "$W_PID" 2>/dev/null || true
W_PID=
wait_workers "$C2_ADDR" 0

"$LOADGEN" -addr "http://$C2_ADDR" $LG_ARGS -phases overload -append -out "$OUT"

"$LOADGEN" -verify "$OUT"
kill -TERM "$C2_PID" && wait "$C2_PID" 2>/dev/null || true
C2_PID=
echo "loadgen-bench: wrote $OUT"
