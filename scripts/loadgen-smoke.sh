#!/bin/sh
# loadgen-smoke is the CI gate for cmd/loadgen and the serving-layer
# admission control, at shell level against the built binaries:
#
#   1. two -plan-only renders with the same seed are byte-identical;
#   2. a deliberately narrow daemon (one worker slot, two backlog slots)
#      takes cold + warm + overload traffic: the warm phase must serve
#      from the memory tier and the overload burst must shed with 429 +
#      Retry-After;
#   3. a second loadgen process -appends a replay of the same plan and
#      must observe byte-identical response bodies (the artifact carries
#      per-cell body hashes, so the comparison crosses processes);
#   4. the finished artifact passes selcache-loadgen/v1 validation.
set -eu

SELCACHED=${1:?usage: loadgen-smoke.sh <selcached-binary> <loadgen-binary>}
LOADGEN=${2:?usage: loadgen-smoke.sh <selcached-binary> <loadgen-binary>}
DIR=$(mktemp -d)
PID=
cleanup() {
    kill "$PID" 2>/dev/null || true
    rm -rf "$DIR"
}
trap cleanup EXIT

# Small fixed-seed plan: cheap synthetic cells for the base phases, two
# real benchmarks (expensive enough to hold the single worker slot while
# the rest of the burst arrives) for the overload phase.
LG_ARGS="-seed 7 -requests 24 -cells 10 -rate 100 -overload-requests 12 -overload-named swim,compress"

# 1. Plan determinism.
"$LOADGEN" -plan-only $LG_ARGS -out "$DIR/plan1.json" >/dev/null
"$LOADGEN" -plan-only $LG_ARGS -out "$DIR/plan2.json" >/dev/null
cmp -s "$DIR/plan1.json" "$DIR/plan2.json" || {
    echo "loadgen-smoke: two identical -plan-only runs rendered different plans" >&2
    diff "$DIR/plan1.json" "$DIR/plan2.json" >&2 || true
    exit 1
}

# 2. Narrow daemon: 1 worker slot, 2 backlog slots, disk cache on.
"$SELCACHED" -addr 127.0.0.1:0 -workers 1 -max-backlog 2 -cachedir "$DIR/cache" 2>"$DIR/daemon.log" &
PID=$!
ADDR=
for _ in $(seq 1 50); do
    ADDR=$(sed -n 's/^selcached: listening on \([^ ]*\).*/\1/p' "$DIR/daemon.log")
    [ -n "$ADDR" ] && break
    kill -0 "$PID" 2>/dev/null || { echo "loadgen-smoke: daemon died at boot" >&2; cat "$DIR/daemon.log" >&2; exit 1; }
    sleep 0.1
done
[ -n "$ADDR" ] || { echo "loadgen-smoke: daemon never bound" >&2; cat "$DIR/daemon.log" >&2; exit 1; }

ART="$DIR/loadgen.json"
"$LOADGEN" -addr "http://$ADDR" $LG_ARGS -phases cold,warm,overload -out "$ART"

# 3. Cross-process byte-identity: a fresh process replays the base plan
# against the now-warm daemon and compares bodies to the recorded hashes.
"$LOADGEN" -addr "http://$ADDR" $LG_ARGS -phases replay -append -out "$ART"

# 4. Schema validation (also enforces zero body-hash mismatches and that
# every shed response carried Retry-After).
"$LOADGEN" -verify "$ART" >/dev/null

# phase_block NAME -> that phase's JSON object (field order is fixed by
# the struct, so the name line through the last latency line covers it).
phase_block() {
    sed -n "/\"name\": \"$1\"/,/latency_p99_ms/p" "$ART"
}

phase_block warm | grep -q '"memory"' || {
    echo "loadgen-smoke: warm phase never served from the memory tier" >&2
    phase_block warm >&2
    exit 1
}

SHED=$(phase_block overload | sed -n 's/.*"shed": \([0-9]*\).*/\1/p')
[ "${SHED:-0}" -gt 0 ] || {
    echo "loadgen-smoke: overload phase shed nothing (wanted 429s from the narrow daemon)" >&2
    phase_block overload >&2
    exit 1
}
phase_block overload | grep -q '"retry_after_seen": true' || {
    echo "loadgen-smoke: shed responses missing Retry-After" >&2
    phase_block overload >&2
    exit 1
}

kill -TERM "$PID"
i=0
while kill -0 "$PID" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && { echo "loadgen-smoke: daemon ignored SIGTERM" >&2; exit 1; }
    sleep 0.1
done
wait "$PID" 2>/dev/null || { echo "loadgen-smoke: daemon exited non-zero" >&2; cat "$DIR/daemon.log" >&2; exit 1; }
PID=
echo "loadgen-smoke: ok (plan deterministic, warm served from memory, overload shed $SHED with Retry-After, bodies byte-identical across processes)"
