#!/bin/sh
# serve-smoke boots selcached on a random port, exercises /healthz and one
# /v1/run through `selcached ctl`, then sends SIGTERM and asserts a clean
# graceful drain. Exercises the built binary's full lifecycle the way the
# in-process tests cannot.
set -eu

BIN=${1:?usage: serve-smoke.sh <selcached-binary>}
LOG=$(mktemp)
trap 'kill "$PID" 2>/dev/null || true; rm -f "$LOG"' EXIT

"$BIN" -addr 127.0.0.1:0 -workers 2 2>"$LOG" &
PID=$!

# The daemon logs "selcached: listening on HOST:PORT (...)" once bound.
ADDR=
for _ in $(seq 1 50); do
    ADDR=$(sed -n 's/^selcached: listening on \([^ ]*\).*/\1/p' "$LOG")
    [ -n "$ADDR" ] && break
    kill -0 "$PID" 2>/dev/null || { echo "serve-smoke: daemon died at boot" >&2; cat "$LOG" >&2; exit 1; }
    sleep 0.1
done
[ -n "$ADDR" ] || { echo "serve-smoke: daemon never bound" >&2; cat "$LOG" >&2; exit 1; }

"$BIN" ctl -addr "http://$ADDR" health >/dev/null
OUT=$("$BIN" ctl -addr "http://$ADDR" run -bench compress)
case $OUT in
*'"workload":'*) ;;
*) echo "serve-smoke: unexpected /v1/run response: $OUT" >&2; exit 1 ;;
esac

kill -TERM "$PID"
i=0
while kill -0 "$PID" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && { echo "serve-smoke: daemon ignored SIGTERM" >&2; exit 1; }
    sleep 0.1
done
wait "$PID" 2>/dev/null || { echo "serve-smoke: daemon exited non-zero" >&2; cat "$LOG" >&2; exit 1; }
grep -q "drained, exiting" "$LOG" || { echo "serve-smoke: no drain marker in log" >&2; cat "$LOG" >&2; exit 1; }
echo "serve-smoke: ok ($ADDR)"
