#!/bin/sh
# cluster-smoke boots a coordinator and two workers on random ports, runs
# the paper's full 13-workload base/bypass sweep through the cluster while
# SIGKILLing one worker mid-run, and asserts the merged output is
# byte-identical to the same sweep on a plain single-node daemon. It then
# replaces the coordinator with a cache-cold one and asserts the surviving
# worker's cache is served through the peer tier (X-Selcache-Tier: peer),
# byte-identical to the worker's own bytes. This is the shell-level twin
# of the fault-injection tests in internal/cluster: it proves the built
# binary's cluster lifecycle, not just the packages.
set -eu

BIN=${1:?usage: cluster-smoke.sh <selcached-binary>}
DIR=$(mktemp -d)
COORD_PID= W1_PID= W2_PID= REF_PID= C2_PID=
cleanup() {
    for pid in $COORD_PID $W1_PID $W2_PID $REF_PID $C2_PID; do
        kill "$pid" 2>/dev/null || true
    done
    rm -rf "$DIR"
}
trap cleanup EXIT

# wait_addr LOGFILE PID -> echoes the bound address from the startup line.
wait_addr() {
    _addr=
    for _ in $(seq 1 50); do
        _addr=$(sed -n 's/^selcached: listening on \([^ ]*\).*/\1/p' "$1")
        [ -n "$_addr" ] && break
        kill -0 "$2" 2>/dev/null || { echo "cluster-smoke: daemon died at boot" >&2; cat "$1" >&2; exit 1; }
        sleep 0.1
    done
    [ -n "$_addr" ] || { echo "cluster-smoke: daemon never bound" >&2; cat "$1" >&2; exit 1; }
    echo "$_addr"
}

SWEEP_ARGS="sweep -configs base -mechs bypass"

# Reference: the same sweep on an unclustered daemon.
"$BIN" -addr 127.0.0.1:0 -workers 2 2>"$DIR/ref.log" &
REF_PID=$!
REF_ADDR=$(wait_addr "$DIR/ref.log" "$REF_PID")
"$BIN" ctl -addr "http://$REF_ADDR" $SWEEP_ARGS >"$DIR/ref.json"
kill -TERM "$REF_PID" && wait "$REF_PID" 2>/dev/null || true
REF_PID=

# Cluster: coordinator plus two workers that join it.
"$BIN" -addr 127.0.0.1:0 -workers 2 -health-interval 250ms 2>"$DIR/coord.log" &
COORD_PID=$!
COORD_ADDR=$(wait_addr "$DIR/coord.log" "$COORD_PID")

"$BIN" -addr 127.0.0.1:0 -workers 2 -worker -join "http://$COORD_ADDR" -health-interval 250ms 2>"$DIR/w1.log" &
W1_PID=$!
"$BIN" -addr 127.0.0.1:0 -workers 2 -worker -join "http://$COORD_ADDR" -health-interval 250ms 2>"$DIR/w2.log" &
W2_PID=$!
W1_ADDR=$(wait_addr "$DIR/w1.log" "$W1_PID")
wait_addr "$DIR/w2.log" "$W2_PID" >/dev/null

# Both workers registered and live.
for _ in $(seq 1 50); do
    "$BIN" ctl -addr "http://$COORD_ADDR" cluster status >"$DIR/status.json" 2>/dev/null || true
    case $(cat "$DIR/status.json") in
    *'"live_workers":2'*) break ;;
    esac
    sleep 0.1
done
case $(cat "$DIR/status.json") in
*'"live_workers":2'*) ;;
*) echo "cluster-smoke: workers never joined" >&2; cat "$DIR/coord.log" >&2; exit 1 ;;
esac
"$BIN" ctl -addr "http://$COORD_ADDR" cluster workers >&2

# Sweep through the cluster, SIGKILLing one worker while cells are in
# flight. Retries reroute its shard; the merge must not notice.
"$BIN" ctl -addr "http://$COORD_ADDR" $SWEEP_ARGS >"$DIR/got.json" &
SWEEP_PID=$!
sleep 0.5
kill -9 "$W2_PID" 2>/dev/null || true
W2_PID=
wait "$SWEEP_PID" || { echo "cluster-smoke: clustered sweep failed after worker kill" >&2; cat "$DIR/coord.log" >&2; exit 1; }

cmp -s "$DIR/ref.json" "$DIR/got.json" || {
    echo "cluster-smoke: clustered sweep differs from single-node output" >&2
    ls -l "$DIR/ref.json" "$DIR/got.json" >&2
    exit 1
}

# Peer tier: a brand-new coordinator with an empty cache adopts the
# surviving worker. Its first touch of a cell the worker already holds
# must come back as one bounded peer fetch — no execution anywhere — with
# bytes identical to what the worker itself serves.
curl -s -o "$DIR/peer-ref.json" -X POST "http://$W1_ADDR/v1/run" \
    -H 'Content-Type: application/json' -d '{"workload":"compress"}'
"$BIN" -addr 127.0.0.1:0 -workers 2 -health-interval 250ms 2>"$DIR/c2.log" &
C2_PID=$!
C2_ADDR=$(wait_addr "$DIR/c2.log" "$C2_PID")
curl -fsS -X POST "http://$C2_ADDR/v1/cluster/join" \
    -H 'Content-Type: application/json' -d "{\"addr\":\"http://$W1_ADDR\"}" >/dev/null
for _ in $(seq 1 50); do
    case $(curl -fsS "http://$C2_ADDR/v1/cluster/status" 2>/dev/null || true) in
    *'"live_workers":1'*) break ;;
    esac
    sleep 0.1
done
curl -s -D "$DIR/peer-hdr.txt" -o "$DIR/peer-got.json" -X POST "http://$C2_ADDR/v1/run" \
    -H 'Content-Type: application/json' -d '{"workload":"compress"}'
grep -qi '^X-Selcache-Tier: peer' "$DIR/peer-hdr.txt" || {
    echo "cluster-smoke: cold coordinator did not serve from the peer tier" >&2
    cat "$DIR/peer-hdr.txt" >&2
    cat "$DIR/c2.log" >&2
    exit 1
}
cmp -s "$DIR/peer-ref.json" "$DIR/peer-got.json" || {
    echo "cluster-smoke: peer-served bytes differ from the owning worker's" >&2
    ls -l "$DIR/peer-ref.json" "$DIR/peer-got.json" >&2
    exit 1
}

# Graceful drain of the survivors.
kill -TERM "$COORD_PID" "$W1_PID" "$C2_PID"
for pid in $COORD_PID $W1_PID $C2_PID; do
    i=0
    while kill -0 "$pid" 2>/dev/null; do
        i=$((i + 1))
        [ "$i" -gt 100 ] && { echo "cluster-smoke: daemon ignored SIGTERM" >&2; exit 1; }
        sleep 0.1
    done
done
wait "$COORD_PID" 2>/dev/null || { echo "cluster-smoke: coordinator exited non-zero" >&2; cat "$DIR/coord.log" >&2; exit 1; }
grep -q "drained, exiting" "$DIR/coord.log" || { echo "cluster-smoke: no drain marker" >&2; cat "$DIR/coord.log" >&2; exit 1; }
COORD_PID= W1_PID= C2_PID=
echo "cluster-smoke: ok (coordinator $COORD_ADDR, one worker survived a SIGKILL, output byte-identical, peer tier serves the survivor's cache)"
