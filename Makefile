# Check matrix for the selcache reproduction. `make check` is the
# pre-commit gate; the individual targets exist for iterating.

GO ?= go

.PHONY: check vet build test race bench-smoke bench-json bench-json-smoke fuzz-smoke serve-smoke cluster-smoke loadgen-smoke loadgen-bench validate-smoke validate corpus corpus-smoke estimate-smoke energy-smoke tier1

check: vet build race bench-smoke serve-smoke cluster-smoke loadgen-smoke validate-smoke corpus-smoke estimate-smoke energy-smoke fuzz-smoke

# tier1 is the fast gate the roadmap requires of every change.
tier1:
	$(GO) build ./... && $(GO) test ./...

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race also exercises the parallel-vs-serial determinism tests, which spawn
# real workers even on one CPU; expect this to take several minutes.
race:
	$(GO) test -race ./...

# One pooled-vs-serial sweep plus the hot-path microbenchmarks, a single
# iteration each — a smoke test that the benchmarks still build and run,
# not a measurement.
bench-smoke:
	$(GO) test -run '^$$' -bench 'ParallelSweep|AccessHotPath' -benchtime=1x .

# Regenerate the committed perf artifact: the full Table 3 sweep through the
# batched replay engine, with per-benchmark event counts and wall times
# (schema selcache-bench/v1, docs/PERFORMANCE.md §7). Wall times are host
# measurements — expect them to differ run to run; the schema and event
# counts are what CI validates.
bench-json:
	$(GO) run ./cmd/experiments -run table3 -benchjson BENCH_table3.json

# CI smoke: emit the artifact from the cheapest sweep (Table 2 is a single
# config), then re-load it through the schema validator.
bench-json-smoke:
	$(GO) run ./cmd/experiments -run table2 -benchjson /tmp/bench-smoke.json
	$(GO) run ./cmd/experiments -verifybench /tmp/bench-smoke.json
	rm -f /tmp/bench-smoke.json

# Boot the selcached daemon on a random port, hit /healthz and one
# /v1/run through its bundled ctl client, then SIGTERM and assert a
# clean graceful drain (scripts/serve-smoke.sh).
serve-smoke:
	$(GO) build -o /tmp/selcached-smoke ./cmd/selcached
	sh scripts/serve-smoke.sh /tmp/selcached-smoke
	rm -f /tmp/selcached-smoke

# Coordinator + two workers on random ports, the full 13-workload
# base/bypass sweep with one worker SIGKILLed mid-run, asserting the
# merged output is byte-identical to a single-node daemon's
# (scripts/cluster-smoke.sh, docs/CLUSTER.md).
cluster-smoke:
	$(GO) build -o /tmp/selcached-smoke ./cmd/selcached
	sh scripts/cluster-smoke.sh /tmp/selcached-smoke
	rm -f /tmp/selcached-smoke

# Fixed-seed open-loop traffic against a deliberately narrow daemon:
# plan rendering must be byte-identical across runs, the warm phase must
# serve from the memory tier, the overload burst must shed with 429 +
# Retry-After, and a second loadgen process must observe byte-identical
# response bodies (scripts/loadgen-smoke.sh, docs/SERVICE.md).
loadgen-smoke:
	$(GO) build -o /tmp/selcached-smoke ./cmd/selcached
	$(GO) build -o /tmp/loadgen-smoke ./cmd/loadgen
	sh scripts/loadgen-smoke.sh /tmp/selcached-smoke /tmp/loadgen-smoke
	rm -f /tmp/selcached-smoke /tmp/loadgen-smoke

# Regenerate the committed BENCH_loadgen.json: one deterministic traffic
# plan measured cold, warm, peer-served and under overload, with per-cell
# body hashes proving byte-identity across regimes and processes
# (scripts/loadgen-bench.sh). Wall times and latencies are host
# measurements — expect them to differ run to run.
loadgen-bench:
	$(GO) build -o /tmp/selcached-bench ./cmd/selcached
	$(GO) build -o /tmp/loadgen-bench ./cmd/loadgen
	sh scripts/loadgen-bench.sh /tmp/selcached-bench /tmp/loadgen-bench BENCH_loadgen.json
	rm -f /tmp/selcached-bench /tmp/loadgen-bench

# Differential-oracle spot check: one workload per access-pattern class,
# every version and both hardware mechanisms, engine vs naive reference in
# lockstep (docs/VALIDATION.md). The full matrix is `make validate`.
validate-smoke:
	$(GO) run ./cmd/validate -short

validate:
	$(GO) run ./cmd/validate

# The full generative corpus: 1000+ fingerprint-distinct kernels from all
# 81 synth families, swept across every version, 32 kernels
# oracle-spot-checked (docs/CORPUS.md).
corpus:
	$(GO) run ./cmd/corpus -n 1000 -sample 32 -out /tmp/corpus.json

# CI smoke: regenerate the committed smoke artifact from its own recorded
# parameters and require byte equality — synthesis, sweep, profiles and
# oracle verdicts must all be deterministic. Regenerate the artifact after
# an intended change with:
#   go run ./cmd/corpus -n 96 -sample 8 -out CORPUS_smoke.json
corpus-smoke:
	$(GO) run ./cmd/corpus -verify CORPUS_smoke.json

# CI smoke for the symbolic locality estimator: re-score the estimator
# against the simulator over the smoke corpus and require the committed
# accuracy artifact byte-identically (docs/ESTIMATOR.md). Regenerate after
# an intended model change with:
#   go run ./cmd/corpus -estimate -n 96 -out ESTIMATE_smoke.json
estimate-smoke:
	$(GO) run ./cmd/corpus -verify ESTIMATE_smoke.json

# CI smoke for the energy model: resweep the {lru,ehc} × way-memo grid
# over the smoke corpus and require the committed energy artifact
# byte-identically (docs/ENERGY.md). Regenerate after an intended model
# change with:
#   go run ./cmd/corpus -energy -n 48 -out ENERGY_smoke.json
energy-smoke:
	$(GO) run ./cmd/corpus -verify ENERGY_smoke.json

# 30 seconds of each fuzz target: enough to shake out codec and
# marker-elimination regressions on fresh inputs without stalling the
# gate. Longer campaigns: go test ./internal/trace -fuzz FuzzTraceRoundTrip
fuzz-smoke:
	$(GO) test ./internal/trace -fuzz FuzzTraceRoundTrip -fuzztime 30s -run '^$$'
	$(GO) test ./internal/regions -fuzz FuzzMarkerBalance -fuzztime 30s -run '^$$'
	$(GO) test ./internal/oracle -fuzz FuzzSynthOracleEquivalence -fuzztime 20s -run '^$$'
	$(GO) test ./internal/oracle -fuzz FuzzPolicyOracleEquivalence -fuzztime 20s -run '^$$'
