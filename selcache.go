// Package selcache is a from-scratch reproduction of "An Integrated
// Approach for Improving Cache Behavior" (Memik, Kandemir, Choudhary,
// Kadayif — DATE 2003): a selective hardware/compiler framework for data
// cache locality.
//
// The library contains everything the paper's evaluation needs, built on
// the Go standard library alone:
//
//   - a loop-nest intermediate representation with classified memory
//     references (internal/loopir);
//   - the region-detection algorithm that splits a program into
//     compiler-optimizable and hardware-managed regions and brackets the
//     latter with activate/deactivate instructions (internal/regions);
//   - a compiler with reuse-driven loop interchange, data-layout
//     selection, tiling and unroll-and-jam/scalar replacement
//     (internal/opt);
//   - a simulated machine in the mold of the paper's SimpleScalar setup:
//     two-level caches, TLB, an analytic out-of-order timing model, the
//     Johnson–Hwu MAT/SLDT cache-bypassing mechanism and Jouppi victim
//     caches (internal/sim, internal/mat, internal/cache, internal/tlb);
//   - the paper's 13 benchmarks re-implemented as simulated workloads,
//     including an in-memory relational substrate for the TPC queries
//     (internal/workloads, internal/db);
//   - experiment drivers regenerating every table and figure of the
//     evaluation section (internal/experiments).
//
// This package is the public facade: enough to run any benchmark through
// any of the paper's four schemes and reproduce the evaluation.
//
//	w, _ := selcache.BenchmarkByName("swim")
//	opts := selcache.DefaultOptions()
//	base := selcache.Run(w.Build, selcache.Base, opts)
//	sel := selcache.Run(w.Build, selcache.Selective, opts)
//	fmt.Printf("selective improves swim by %.1f%%\n",
//	    selcache.Improvement(base, sel))
package selcache

import (
	"selcache/internal/core"
	"selcache/internal/experiments"
	"selcache/internal/sim"
	"selcache/internal/workloads"
)

// Re-exported core types. See the internal packages for full documentation.
type (
	// Version is one of the paper's simulated schemes.
	Version = core.Version
	// Options configures a pipeline run (machine, mechanism, compiler).
	Options = core.Options
	// Result is the outcome of one simulated run.
	Result = core.Result
	// Builder produces a fresh base program for a workload.
	Builder = core.Builder
	// Workload is one of the paper's 13 benchmarks.
	Workload = workloads.Workload
	// MachineConfig is the simulated processor configuration.
	MachineConfig = sim.Config
	// HWKind selects the hardware mechanism (bypass or victim).
	HWKind = sim.HWKind
)

// The paper's simulated versions (Section 4.3).
const (
	Base         = core.Base
	PureHardware = core.PureHardware
	PureSoftware = core.PureSoftware
	Combined     = core.Combined
	Selective    = core.Selective
)

// Hardware mechanisms.
const (
	HWNone   = sim.HWNone
	HWBypass = sim.HWBypass
	HWVictim = sim.HWVictim
)

// DefaultOptions returns the configuration used throughout the paper's
// experiments: Table 1 machine, bypass mechanism, threshold 0.5, full
// compiler pipeline.
func DefaultOptions() Options { return core.DefaultOptions() }

// BaseMachine returns the paper's Table 1 processor configuration.
func BaseMachine() MachineConfig { return sim.Base() }

// Benchmarks returns the 13 paper benchmarks in Table 2 order.
func Benchmarks() []Workload { return workloads.All() }

// BenchmarkByName finds a benchmark ("swim", "tpc-d.q1", ...).
func BenchmarkByName(name string) (Workload, bool) { return workloads.ByName(name) }

// Run executes one version of a workload end to end.
func Run(build Builder, v Version, o Options) Result { return core.Run(build, v, o) }

// RunAll executes all five versions.
func RunAll(build Builder, o Options) []Result { return core.RunAll(build, o) }

// Improvement returns the percentage cycle improvement of r over base.
func Improvement(base, r Result) float64 { return core.Improvement(base, r) }

// Versions lists the five simulated versions in presentation order.
func Versions() []Version { return core.Versions() }

// Experiment re-exports: regenerate the paper's tables and figures.

// Table2 reproduces the benchmark-characteristics table.
func Table2() []experiments.Table2Row { return experiments.Table2() }

// Table3 reproduces the average-improvement summary.
func Table3() []experiments.Table3Row { return experiments.Table3() }

// RunFigure reproduces one of Figures 4–9.
func RunFigure(f experiments.FigureID) experiments.Sweep { return experiments.RunFigure(f) }
