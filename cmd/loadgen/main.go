// Command loadgen is an open-loop traffic generator for selcached. It
// renders a deterministic request plan from a seed — zipfian cell
// popularity over a corpus of named and synthetic "family#seed"
// workloads, a run/sweep/estimate class mix, exponential inter-arrival
// times — then replays the identical plan against a server once per
// phase (cold, warm, peer) plus a salted burst phase (overload), and
// records throughput, tail latency, per-tier serve counts, and shed
// behaviour into a selcache-loadgen/v1 artifact.
//
// Open-loop means arrivals fire on schedule whether or not earlier
// requests have completed: a server that falls behind accumulates
// concurrent requests instead of silently slowing the generator, which
// is what makes the overload phase an honest admission-control probe.
//
// The plan (and its sha256 digest) depends only on the flags and seed,
// never on timing, so:
//   - two -plan-only runs with equal flags are byte-identical (CI pins this);
//   - -append can extend an artifact from an earlier process — e.g. a
//     peer phase against a restarted coordinator — and the digest proves
//     both processes replayed the same traffic;
//   - successful response bodies are content-hashed per cell and carried
//     in the artifact, so byte-identity of served results across cold,
//     warm, peer-served, and overloaded traffic is checked even across
//     processes. Any mismatch fails validation.
package main

import (
	"crypto/sha256"
	"encoding/hex"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"selcache/internal/report"
	"selcache/internal/workloads/synth"
)

// cell is one point of the traffic corpus: a workload under one machine
// configuration and hardware mechanism.
type cell struct {
	workload, config, mech string
}

// planReq is one scheduled request: what to send and when, relative to
// the phase start.
type planReq struct {
	offset time.Duration
	class  string // run | sweep | estimate
	cell   cell
}

// plan is the full deterministic schedule: a base sequence replayed by
// the cold/warm/peer phases and a salted burst for the overload phase.
type plan struct {
	base     []planReq
	overload []planReq
	digest   string
}

var classOrder = []string{"run", "sweep", "estimate"}

func main() {
	var (
		addr      = flag.String("addr", "", "server base URL (e.g. http://127.0.0.1:8080); required unless -plan-only or -verify")
		out       = flag.String("out", "BENCH_loadgen.json", "artifact path")
		seed      = flag.Int64("seed", 1, "plan seed; equal seeds and flags render byte-identical plans")
		clients   = flag.Int("clients", 8, "connection-pool size (recorded in the artifact)")
		rate      = flag.Float64("rate", 50, "mean arrival rate for the base phases, requests/sec")
		requests  = flag.Int("requests", 100, "requests per base phase")
		cells     = flag.Int("cells", 32, "corpus size (named workloads first, then synthetic family#seed)")
		zipfS     = flag.Float64("zipf", 1.2, "zipfian popularity skew (must exceed 1)")
		mixFlag   = flag.String("mix", "run=0.6,sweep=0.2,estimate=0.2", "request-class fractions")
		named     = flag.String("named", "compress,swim,tpc-c", "named workloads joining the corpus tail (synthetic cells take the popular head)")
		overNamed = flag.String("overload-named", "swim,compress,mgrid,adi,applu,vpenta", "expensive named workloads for the overload burst")
		phases    = flag.String("phases", "cold,warm", "comma-separated phases to execute: cold, warm, peer, overload")
		overMult  = flag.Float64("overload-mult", 20, "overload arrival-rate multiplier")
		overReqs  = flag.Int("overload-requests", 0, "overload phase size (default: -requests)")
		planOnly  = flag.Bool("plan-only", false, "render and write the plan without sending traffic")
		appendTo  = flag.Bool("append", false, "extend an existing artifact (digests must match)")
		verify    = flag.String("verify", "", "validate an artifact and exit")
		reqTO     = flag.Duration("req-timeout", 2*time.Minute, "per-request timeout")
		phaseWait = flag.Duration("settle", 0, "sleep between phases (lets background fills drain)")
	)
	flag.Parse()

	if *verify != "" {
		l, err := report.LoadLoadgenJSON(*verify)
		if err != nil {
			fatalf("verify: %v", err)
		}
		fmt.Printf("%s: ok (%s, %d phases, digest %s)\n", *verify, l.Schema, len(l.Phases), l.PlanDigest[:12])
		return
	}

	mix, err := parseMix(*mixFlag)
	if err != nil {
		fatalf("%v", err)
	}
	if *overReqs == 0 {
		*overReqs = *requests
	}
	pl, err := buildPlan(*seed, *cells, *requests, *overReqs, *rate, *rate**overMult, *zipfS, mix, splitCSV(*named), splitCSV(*overNamed))
	if err != nil {
		fatalf("%v", err)
	}

	art := &report.LoadgenJSON{
		Schema:     report.LoadgenSchema,
		Seed:       *seed,
		Clients:    *clients,
		Cells:      *cells,
		ZipfS:      *zipfS,
		Mix:        mix,
		PlanDigest: pl.digest,
	}
	hashes := map[string]string{}
	if *appendTo {
		prev, err := report.LoadLoadgenJSON(*out)
		if err != nil {
			fatalf("append: %v", err)
		}
		if prev.PlanDigest != pl.digest {
			fatalf("append: artifact plan digest %s does not match this plan (%s); same seed and flags required",
				prev.PlanDigest[:12], pl.digest[:12])
		}
		art = prev
		art.PlanOnly = false
		for k, v := range art.BodyHashes {
			hashes[k] = v
		}
	}

	phaseNames := splitCSV(*phases)
	if *planOnly {
		art.PlanOnly = true
		for _, name := range phaseNames {
			n := uint64(len(pl.base))
			if name == "overload" {
				n = uint64(len(pl.overload))
			}
			art.Phases = append(art.Phases, report.LoadgenPhase{Name: name, Requests: n})
		}
		if err := art.WriteFile(*out); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("plan %s: %d base + %d overload requests over %d cells -> %s\n",
			pl.digest[:12], len(pl.base), len(pl.overload), *cells, *out)
		return
	}

	if *addr == "" {
		fatalf("-addr is required to send traffic (or use -plan-only)")
	}
	client := &http.Client{
		Timeout: *reqTO,
		Transport: &http.Transport{
			MaxIdleConns:        *clients * 2,
			MaxIdleConnsPerHost: *clients * 2,
		},
	}
	var mismatches uint64
	for i, name := range phaseNames {
		reqs := pl.base
		if name == "overload" {
			reqs = pl.overload
		}
		if i > 0 && *phaseWait > 0 {
			time.Sleep(*phaseWait)
		}
		ph, miss := runPhase(client, strings.TrimSuffix(*addr, "/"), name, reqs, hashes)
		mismatches += miss
		art.Phases = append(art.Phases, ph)
		fmt.Printf("phase %-8s %5d req  %8.1f req/s  p50 %7.2fms  p99 %7.2fms  shed %d  tiers %v\n",
			name, ph.Requests, ph.RequestsPerSecond, ph.P50Millis, ph.P99Millis, ph.Shed, ph.ByTier)
	}
	art.BodyHashes = hashes
	art.BodyHashMismatches += mismatches
	if err := art.WriteFile(*out); err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("wrote %s (digest %s)\n", *out, pl.digest[:12])
}

// buildPlan renders the deterministic schedule. Everything flows from one
// rand.Source, consumed in a fixed order, so equal inputs give equal
// plans — and equal digests — on every platform.
func buildPlan(seed int64, nCells, nBase, nOver int, baseRate, overRate, zipfS float64, mix map[string]float64, named, overNamed []string) (*plan, error) {
	if len(overNamed) == 0 {
		return nil, fmt.Errorf("-overload-named must list at least one workload")
	}
	if nCells < 1 || nBase < 1 || nOver < 1 {
		return nil, fmt.Errorf("cells, requests and overload-requests must be positive")
	}
	if zipfS <= 1 {
		return nil, fmt.Errorf("-zipf must exceed 1")
	}
	if baseRate <= 0 || overRate <= 0 {
		return nil, fmt.Errorf("arrival rates must be positive")
	}
	rng := rand.New(rand.NewSource(seed))
	fams := synth.Families()

	// Corpus: cheap synthetic kernels take the popular zipf head, the real
	// named benchmarks (each a half-second-plus simulation) sit in the
	// long tail — so the bulk of the traffic is light but every plan has a
	// few heavy hitters. Mechanisms alternate deterministically so the
	// corpus exercises both hardware paths.
	corpus := make([]cell, 0, nCells)
	synthN := nCells - len(named)
	if synthN < 0 {
		synthN = 0
	}
	for len(corpus) < synthN {
		f := fams[rng.Intn(len(fams))]
		corpus = append(corpus, cell{
			workload: fmt.Sprintf("%s#%d", f.Name(), rng.Intn(1000)),
			config:   "base",
			mech:     mechFor(rng),
		})
	}
	for _, w := range named {
		if len(corpus) == nCells {
			break
		}
		corpus = append(corpus, cell{w, "base", mechFor(rng)})
	}

	zipf := rand.NewZipf(rng, zipfS, 1, uint64(nCells-1))
	base := make([]planReq, nBase)
	var at time.Duration
	for i := range base {
		at += time.Duration(rng.ExpFloat64() / baseRate * float64(time.Second))
		base[i] = planReq{offset: at, class: classFor(rng, mix), cell: corpus[zipf.Uint64()]}
	}

	// The overload burst is all-run traffic over distinct never-cached
	// EXPENSIVE cells: real named benchmarks under the non-base machine
	// configurations (the base corpus only ever uses config "base", so
	// these are misses by construction). Cost matters: on a small host the
	// generator and server timeshare the CPU, and only a simulation that
	// far outlasts a scheduling quantum lets the remaining burst arrive,
	// overflow the backlog, and actually exercise shedding. Millisecond
	// synthetic cells serialize instead and nothing ever sheds.
	var overCells []cell
	for _, w := range overNamed {
		for _, cfg := range []string{"higher-mem-lat", "larger-l2", "larger-l1", "higher-l2-assoc", "higher-l1-assoc"} {
			for _, m := range []string{"bypass", "victim"} {
				overCells = append(overCells, cell{w, cfg, m})
			}
		}
	}
	rng.Shuffle(len(overCells), func(i, j int) { overCells[i], overCells[j] = overCells[j], overCells[i] })
	if nOver > len(overCells) {
		nOver = len(overCells) // repeats would be cache hits, not pressure
	}
	over := make([]planReq, nOver)
	at = 0
	for i := range over {
		at += time.Duration(rng.ExpFloat64() / overRate * float64(time.Second))
		over[i] = planReq{offset: at, class: "run", cell: overCells[i]}
	}

	h := sha256.New()
	for _, r := range base {
		fmt.Fprintf(h, "base %d %s %s %s %s\n", r.offset, r.class, r.cell.workload, r.cell.config, r.cell.mech)
	}
	for _, r := range over {
		fmt.Fprintf(h, "over %d %s %s %s %s\n", r.offset, r.class, r.cell.workload, r.cell.config, r.cell.mech)
	}
	return &plan{base: base, overload: over, digest: hex.EncodeToString(h.Sum(nil))}, nil
}

func mechFor(rng *rand.Rand) string {
	if rng.Intn(2) == 0 {
		return "bypass"
	}
	return "victim"
}

// classFor picks a request class from the mix, consuming exactly one
// random draw regardless of outcome.
func classFor(rng *rand.Rand, mix map[string]float64) string {
	u := rng.Float64()
	for _, c := range classOrder {
		u -= mix[c]
		if u < 0 {
			return c
		}
	}
	return "run"
}

// outcome is one completed request's record, folded into the phase totals
// under a lock on the collector side.
type outcome struct {
	status     int
	tier       string
	latency    time.Duration
	retryAfter bool
	hashKey    string
	bodyHash   string
	err        error
}

// runPhase replays a schedule open-loop against addr and folds the
// results into a LoadgenPhase. The hashes map accumulates per-cell body
// hashes across phases; the returned count is new mismatches.
func runPhase(client *http.Client, addr, name string, reqs []planReq, hashes map[string]string) (report.LoadgenPhase, uint64) {
	var (
		mu    sync.Mutex
		outs  = make([]outcome, 0, len(reqs))
		wg    sync.WaitGroup
		start = time.Now()
	)
	for _, r := range reqs {
		if d := r.offset - time.Since(start); d > 0 {
			time.Sleep(d)
		}
		wg.Add(1)
		go func(r planReq) {
			defer wg.Done()
			o := send(client, addr, r)
			mu.Lock()
			outs = append(outs, o)
			mu.Unlock()
		}(r)
	}
	wg.Wait()
	wall := time.Since(start)

	ph := report.LoadgenPhase{
		Name:      name,
		ByStatus:  map[string]uint64{},
		ByTier:    map[string]uint64{},
		WallNanos: wall.Nanoseconds(),
	}
	var (
		lats        []time.Duration
		withRetry   uint64
		newMismatch uint64
	)
	for _, o := range outs {
		if o.err != nil {
			ph.Errors++
			continue
		}
		ph.Requests++
		ph.ByStatus[strconv.Itoa(o.status)]++
		if o.status == http.StatusTooManyRequests {
			ph.Shed++
			if o.retryAfter {
				withRetry++
			}
			continue
		}
		if o.status/100 != 2 {
			continue
		}
		lats = append(lats, o.latency)
		if o.tier != "" {
			ph.ByTier[o.tier]++
		}
		if prev, ok := hashes[o.hashKey]; ok {
			if prev != o.bodyHash {
				newMismatch++
			}
		} else {
			hashes[o.hashKey] = o.bodyHash
		}
	}
	ph.RetryAfterSeen = ph.Shed > 0 && withRetry == ph.Shed
	if ph.Requests > 0 {
		ph.RequestsPerSecond = float64(ph.Requests) / wall.Seconds()
	}
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		ph.P50Millis = float64(lats[(len(lats)-1)*50/100]) / float64(time.Millisecond)
		ph.P99Millis = float64(lats[(len(lats)-1)*99/100]) / float64(time.Millisecond)
	}
	return ph, newMismatch
}

// send issues one request and classifies the result. Bodies are hashed,
// never retained.
func send(client *http.Client, addr string, r planReq) outcome {
	var path, body string
	switch r.class {
	case "run":
		path = "/v1/run"
		body = fmt.Sprintf(`{"workload":%q,"config":%q,"mechanism":%q}`, r.cell.workload, r.cell.config, r.cell.mech)
	case "sweep":
		path = "/v1/sweep"
		body = fmt.Sprintf(`{"workloads":[%q],"configs":[%q],"mechanisms":[%q]}`, r.cell.workload, r.cell.config, r.cell.mech)
	default:
		path = "/v1/estimate"
		body = fmt.Sprintf(`{"workload":%q,"config":%q}`, r.cell.workload, r.cell.config)
	}
	start := time.Now()
	resp, err := client.Post(addr+path, "application/json", strings.NewReader(body))
	if err != nil {
		return outcome{err: err}
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return outcome{err: err}
	}
	sum := sha256.Sum256(data)
	return outcome{
		status:     resp.StatusCode,
		tier:       resp.Header.Get("X-Selcache-Tier"),
		latency:    time.Since(start),
		retryAfter: resp.Header.Get("Retry-After") != "",
		hashKey:    r.class + "|" + r.cell.workload + "|" + r.cell.config + "|" + r.cell.mech,
		bodyHash:   hex.EncodeToString(sum[:]),
	}
}

func parseMix(s string) (map[string]float64, error) {
	mix := map[string]float64{}
	var total float64
	for _, part := range splitCSV(s) {
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("bad mix entry %q (want class=fraction)", part)
		}
		known := false
		for _, c := range classOrder {
			known = known || c == k
		}
		if !known {
			return nil, fmt.Errorf("unknown class %q (want run, sweep or estimate)", k)
		}
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || f < 0 || f > 1 {
			return nil, fmt.Errorf("bad fraction %q for class %q", v, k)
		}
		mix[k] = f
		total += f
	}
	if total < 0.999 || total > 1.001 {
		return nil, fmt.Errorf("mix fractions sum to %g, want 1", total)
	}
	return mix, nil
}

func splitCSV(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "loadgen: "+format+"\n", args...)
	os.Exit(1)
}
