// Command regions runs the paper's region-detection algorithm (Section 2)
// over a benchmark's base program and reports the resulting partition:
// which loops the compiler will optimize, which are left to the hardware
// mechanism, and where the activate/deactivate instructions land.
//
//	regions -bench chaos            # summary
//	regions -bench chaos -dump      # annotated program structure
//	regions -bench chaos -threshold 0.7
package main

import (
	"flag"
	"fmt"
	"os"

	"selcache/internal/loopir"
	"selcache/internal/regions"
	"selcache/internal/workloads"
)

func main() {
	var (
		benchName = flag.String("bench", "chaos", "benchmark name")
		threshold = flag.Float64("threshold", 0.5, "analyzable-reference ratio threshold")
		noProp    = flag.Bool("no-propagate", false, "disable innermost-out propagation")
		noElim    = flag.Bool("no-eliminate", false, "keep redundant ON/OFF instructions")
		dump      = flag.Bool("dump", false, "print the annotated program structure")
	)
	flag.Parse()

	w, ok := workloads.ByName(*benchName)
	if !ok {
		fmt.Fprintf(os.Stderr, "regions: unknown benchmark %q\n", *benchName)
		os.Exit(1)
	}
	prog := w.Build()
	cfg := regions.Config{
		Threshold: *threshold,
		Propagate: !*noProp,
		Eliminate: !*noElim,
	}
	st := regions.Detect(prog, cfg)

	fmt.Printf("benchmark %s (%s)\n", w.Name, w.Class)
	fmt.Printf("static references: %d analyzable / %d total (ratio %.2f)\n",
		st.AnalyzableRefs, st.TotalRefs,
		float64(st.AnalyzableRefs)/float64(max(1, st.TotalRefs)))
	fmt.Printf("loops: %d software, %d hardware, %d mixed\n",
		st.SoftwareLoops, st.HardwareLoops, st.MixedLoops)
	fmt.Printf("markers: %d inserted, %d eliminated as redundant, %d remain\n",
		st.Inserted, st.Eliminated, regions.MarkerCount(prog))

	if *dump {
		fmt.Println()
		fmt.Print(prog.String())
	} else {
		// Per-loop one-liner for the top two nesting levels.
		fmt.Println("\ntop-level regions:")
		for _, n := range prog.Body {
			switch n := n.(type) {
			case *loopir.Loop:
				fmt.Printf("  for %-8s %-9s (ratio %.2f)\n", n.Var, n.Pref, regions.LoopRatio(n))
			case *loopir.Marker:
				state := "OFF"
				if n.On {
					state = "ON"
				}
				fmt.Printf("  @%s\n", state)
			case *loopir.Stmt:
				fmt.Printf("  stmt %s\n", n.Name)
			}
		}
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
