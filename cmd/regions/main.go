// Command regions runs the paper's region-detection algorithm (Section 2)
// over a benchmark's base program and reports the resulting partition:
// which loops the compiler will optimize, which are left to the hardware
// mechanism, and where the activate/deactivate instructions land.
//
//	regions -bench chaos            # summary
//	regions -bench chaos -dump      # annotated program structure
//	regions -bench chaos -threshold 0.7
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"selcache/internal/loopir"
	"selcache/internal/regions"
	"selcache/internal/workloads"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "regions: %v\n", err)
		os.Exit(1)
	}
}

// run is the testable body of main: flag parsing and dispatch with
// injectable arguments and output streams.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("regions", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		benchName = fs.String("bench", "chaos", "benchmark name")
		threshold = fs.Float64("threshold", 0.5, "analyzable-reference ratio threshold")
		noProp    = fs.Bool("no-propagate", false, "disable innermost-out propagation")
		noElim    = fs.Bool("no-eliminate", false, "keep redundant ON/OFF instructions")
		dump      = fs.Bool("dump", false, "print the annotated program structure")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q (flags only)", fs.Arg(0))
	}

	w, ok := workloads.ByName(*benchName)
	if !ok {
		return fmt.Errorf("unknown benchmark %q", *benchName)
	}
	prog := w.Build()
	cfg := regions.Config{
		Threshold: *threshold,
		Propagate: !*noProp,
		Eliminate: !*noElim,
	}
	st := regions.Detect(prog, cfg)

	fmt.Fprintf(stdout, "benchmark %s (%s)\n", w.Name, w.Class)
	fmt.Fprintf(stdout, "static references: %d analyzable / %d total (ratio %.2f)\n",
		st.AnalyzableRefs, st.TotalRefs,
		float64(st.AnalyzableRefs)/float64(max(1, st.TotalRefs)))
	fmt.Fprintf(stdout, "loops: %d software, %d hardware, %d mixed\n",
		st.SoftwareLoops, st.HardwareLoops, st.MixedLoops)
	fmt.Fprintf(stdout, "markers: %d inserted, %d eliminated as redundant, %d remain\n",
		st.Inserted, st.Eliminated, regions.MarkerCount(prog))

	if *dump {
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, prog.String())
	} else {
		// Per-loop one-liner for the top two nesting levels.
		fmt.Fprintln(stdout, "\ntop-level regions:")
		for _, n := range prog.Body {
			switch n := n.(type) {
			case *loopir.Loop:
				fmt.Fprintf(stdout, "  for %-8s %-9s (ratio %.2f)\n", n.Var, n.Pref, regions.LoopRatio(n))
			case *loopir.Marker:
				state := "OFF"
				if n.On {
					state = "ON"
				}
				fmt.Fprintf(stdout, "  @%s\n", state)
			case *loopir.Stmt:
				fmt.Fprintf(stdout, "  stmt %s\n", n.Name)
			}
		}
	}
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
