package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunFlagParsing covers the CLI surface: error paths return usage
// errors (matching cmd/cachesim), and the summary path reports the
// partition for a real benchmark.
func TestRunFlagParsing(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string // substring; empty means success
		wantOut string // substring of stdout on success
	}{
		{"summary", []string{"-bench", "chaos"}, "", "benchmark chaos (mixed)"},
		{"dump", []string{"-bench", "adi", "-dump"}, "", "benchmark adi"},
		{"bad flag", []string{"-nonsense"}, "flag provided but not defined", ""},
		{"positional arg", []string{"chaos"}, "unexpected argument", ""},
		{"positional after flag", []string{"-bench", "chaos", "extra"}, "unexpected argument", ""},
		{"unknown bench", []string{"-bench", "nope"}, `unknown benchmark "nope"`, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			err := run(tc.args, &stdout, &stderr)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("run(%q) failed: %v", tc.args, err)
				}
				if !strings.Contains(stdout.String(), tc.wantOut) {
					t.Fatalf("stdout %q does not contain %q", stdout.String(), tc.wantOut)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("run(%q) = %v, want error containing %q", tc.args, err, tc.wantErr)
			}
		})
	}
}

// TestRunMarkerLines checks the summary reports marker placement numbers
// (the paper's Section 2 output) for a selective-friendly benchmark.
func TestRunMarkerLines(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-bench", "chaos"}, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := stdout.String()
	for _, want := range []string{"static references:", "loops:", "markers:", "top-level regions:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
