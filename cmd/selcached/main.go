// Command selcached serves the reproduction's simulation engine over a
// JSON HTTP API with a content-addressed result cache (docs/SERVICE.md),
// and optionally as part of a sweep cluster (docs/CLUSTER.md).
//
// Serve mode (the default):
//
//	selcached -addr :8080 -workers 0 -cachedir /var/cache/selcache \
//	          -tracedir /var/cache/selcache/traces -timeout 2m
//
// The daemon logs the bound address to stderr ("selcached: listening on
// ..."), so -addr 127.0.0.1:0 works for scripts that need a free port.
// SIGINT/SIGTERM trigger a graceful drain: the listener stops accepting,
// in-flight requests complete, background cache fills finish, then the
// process exits 0.
//
// Every non-worker daemon is also a cluster coordinator: it mounts the
// /v1/cluster/* endpoints and shards sweep cells across any workers that
// join (with zero workers it behaves exactly like a single node). Worker
// mode turns those roles around — the node announces itself to a
// coordinator and serves forwarded cells:
//
//	selcached -addr :8081 -worker -join http://coordinator:8080 \
//	          -advertise http://worker1:8081
//
// Client mode (selcachectl equivalent):
//
//	selcached ctl -addr http://127.0.0.1:8080 -timeout 2m health
//	selcached ctl run -bench swim -config base -mech bypass
//	selcached ctl estimate -bench swim -config base
//	selcached ctl sweep -benches swim,compress -configs base
//	selcached ctl result -key <sha256>
//	selcached ctl cluster status|workers|shards
//	selcached ctl workloads | metrics
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"text/tabwriter"
	"time"

	"selcache/internal/cluster"
	"selcache/internal/server"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "selcached: %v\n", err)
		os.Exit(1)
	}
}

// run dispatches between serve mode and ctl mode; testable like the
// other commands.
func run(args []string, stdout, stderr io.Writer) error {
	if len(args) > 0 && args[0] == "ctl" {
		return runCtl(args[1:], stdout, stderr)
	}
	return runServe(args, stdout, stderr, nil)
}

// newHTTPServer wraps the handler with the listener-level timeouts a
// daemon facing untrusted clients needs: ReadHeaderTimeout defeats
// slowloris-style header dribbling, IdleTimeout reaps abandoned
// keep-alive connections. Deliberately no ReadTimeout/WriteTimeout —
// request bodies are tiny, but a response may legitimately take as long
// as a cold simulation.
func newHTTPServer(h http.Handler) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
}

// runServe boots the daemon. ready, when non-nil, receives the bound
// address once the listener is up (tests and the smoke scripts use the
// stderr line instead).
func runServe(args []string, stdout, stderr io.Writer, ready chan<- string) error {
	fs := flag.NewFlagSet("selcached", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr     = fs.String("addr", "127.0.0.1:8080", "listen address (host:0 picks a free port)")
		workers  = fs.Int("workers", 0, "concurrent simulation bound (0: one per CPU)")
		tracedir = fs.String("tracedir", "", "persist recorded event traces as .sctrace files in `dir`")
		cachedir = fs.String("cachedir", "", "persist simulation results as <key>.json files in `dir`")
		entries  = fs.Int("cache-entries", 4096, "in-memory result cache capacity")
		timeout  = fs.Duration("timeout", 2*time.Minute, "default per-request deadline (0: none)")
		backlog  = fs.Int("max-backlog", 0, "queued-simulation bound before shedding with 429 (0: 16x workers, at least 256)")
		bgFills  = fs.Int("max-bg-fills", 0, "bound on background cache fills for timed-out requests (0: worker count; negative: none)")
		estPlan  = fs.Bool("estimate-plan", false, "order sweep cells by symbolic-estimator interest and allow estimate_top pruning")

		workerMode = fs.Bool("worker", false, "run as a cluster worker (requires -join)")
		join       = fs.String("join", "", "coordinator base `URL` to announce to (worker mode)")
		advertise  = fs.String("advertise", "", "base `URL` other nodes reach this node at (default http://<bound addr>)")
		healthInt  = fs.Duration("health-interval", 3*time.Second, "cluster liveness cadence: coordinator probe interval, worker announce interval")
		hedgeAfter = fs.Duration("hedge-after", 10*time.Second, "coordinator: duplicate a straggling cell to another worker after this long (negative disables)")
		peerWait   = fs.Duration("peer-timeout", time.Second, "coordinator: bound one peer-cache fetch from the ring owner (negative disables the peer tier)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q (flags only; did you mean 'selcached ctl'?)", fs.Arg(0))
	}
	if *workerMode && *join == "" {
		return errors.New("-worker requires -join <coordinator URL>")
	}
	if !*workerMode && *join != "" {
		return errors.New("-join only makes sense with -worker")
	}

	role := "coordinator"
	if *workerMode {
		role = "worker"
	}
	srv := server.New(server.Config{
		Workers:            *workers,
		TraceDir:           *tracedir,
		CacheDir:           *cachedir,
		CacheEntries:       *entries,
		DefaultTimeout:     *timeout,
		MaxBacklog:         *backlog,
		MaxBackgroundFills: *bgFills,
		EstimatePlan:       *estPlan,
		Role:               role,
		Log:                stderr,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	self := strings.TrimSuffix(*advertise, "/")
	if self == "" {
		self = "http://" + ln.Addr().String()
	}

	// Cluster wiring. A worker announces itself to the coordinator and
	// pins forwarded cells to its local engine; every other daemon is a
	// coordinator — it shards cells across joined workers and degrades to
	// plain single-node service while none are live.
	var coord *cluster.Coordinator
	stopAnnounce := make(chan struct{})
	announceDone := make(chan struct{})
	if *workerMode {
		fmt.Fprintf(stderr, "selcached: worker mode, announcing %s to %s every %v\n", self, *join, *healthInt)
		go func() {
			defer close(announceDone)
			cluster.Announce(stopAnnounce, *join, self, *healthInt, stderr)
		}()
	} else {
		close(announceDone)
		coord = cluster.New(cluster.Config{
			Self:           self,
			HealthInterval: *healthInt,
			HedgeAfter:     *hedgeAfter,
			PeerTimeout:    *peerWait,
			Log:            stderr,
		})
		srv.SetRemote(coord.Execute)
		srv.SetPeerFetch(coord.FetchCached)
		coord.Register(srv.Mux())
	}

	fmt.Fprintf(stderr, "selcached: listening on %s (%s, %s)\n", ln.Addr(), role, srv.Describe())
	if ready != nil {
		ready <- ln.Addr().String()
	}

	httpSrv := newHTTPServer(srv.Handler())
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	// Graceful drain: stop heartbeating first (a draining worker should
	// fall out of its coordinator's live set), stop accepting, let
	// in-flight requests finish (the shutdown grace period must outlive
	// the slowest simulation), then wait for background cache fills.
	fmt.Fprintln(stderr, "selcached: draining")
	close(stopAnnounce)
	<-announceDone
	if coord != nil {
		coord.Close()
	}
	shCtx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	if err := httpSrv.Shutdown(shCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	srv.Drain()
	fmt.Fprintln(stderr, "selcached: drained, exiting")
	return nil
}

// runCtl is the bundled client. The action comes first so each action can
// define its own flags:
//
//	selcached ctl [-addr URL] <health|metrics|workloads|run|sweep|result|cluster> [flags]
func runCtl(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("selcached ctl", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "http://127.0.0.1:8080", "server base URL")
	timeout := fs.Duration("timeout", 2*time.Minute, "whole-request deadline (dial, headers and body; 0 disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return errors.New("ctl: missing action (health|metrics|workloads|run|estimate|sweep|result|cluster)")
	}
	if *timeout < 0 {
		return fmt.Errorf("ctl: negative -timeout %v", *timeout)
	}
	action, rest := fs.Arg(0), fs.Args()[1:]
	c := &ctlClient{
		base: strings.TrimSuffix(*addr, "/"),
		// A bounded client, never http.DefaultClient: against a wedged or
		// unreachable server the default's missing timeout blocks ctl
		// forever. Timeout covers the whole exchange including the body,
		// which is right for an API whose responses are small JSON.
		hc:     &http.Client{Timeout: *timeout},
		stdout: stdout,
	}

	switch action {
	case "health":
		return c.get("/healthz", rest)
	case "metrics":
		return c.get("/metrics", rest)
	case "workloads":
		return c.get("/v1/workloads", rest)
	case "run":
		return ctlRun(c, rest, stderr)
	case "estimate":
		return ctlEstimate(c, rest, stderr)
	case "sweep":
		return ctlSweep(c, rest, stderr)
	case "result":
		return ctlResult(c, rest, stderr)
	case "cluster":
		return ctlCluster(c, rest)
	default:
		return fmt.Errorf("ctl: unknown action %q", action)
	}
}

// ctlClient is the bounded HTTP client all ctl actions share. Transport
// errors are wrapped with the target address, so a misconfigured -addr is
// visible in the message even when the underlying error elides it.
type ctlClient struct {
	base   string
	hc     *http.Client
	stdout io.Writer
}

// ctlGetAttempts bounds the fetch retry loop for idempotent reads.
const ctlGetAttempts = 3

// fetch issues a GET, retrying transient transport errors (connection
// refused or reset mid-exchange, as during a rolling restart) with capped
// exponential backoff. Only reads go through here — replaying run/sweep
// POSTs is the server flight group's call to make, not the client's. A
// client-side timeout is not retried: the deadline is already spent, and
// another attempt would silently double it.
func (c *ctlClient) fetch(path string) (*http.Response, error) {
	var lastErr error
	backoff := 100 * time.Millisecond
	for attempt := 0; attempt < ctlGetAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(backoff)
			backoff *= 2
			if backoff > 2*time.Second {
				backoff = 2 * time.Second
			}
		}
		resp, err := c.hc.Get(c.base + path)
		if err == nil {
			return resp, nil
		}
		lastErr = fmt.Errorf("ctl: %s: %w", c.base, err)
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			break
		}
	}
	return nil, lastErr
}

func (c *ctlClient) get(path string, args []string) error {
	if len(args) > 0 {
		return fmt.Errorf("unexpected argument %q", args[0])
	}
	resp, err := c.fetch(path)
	if err != nil {
		return err
	}
	return ctlBody(resp, c.stdout)
}

func (c *ctlClient) post(path, body string) error {
	resp, err := c.hc.Post(c.base+path, "application/json", strings.NewReader(body))
	if err != nil {
		return fmt.Errorf("ctl: %s: %w", c.base, err)
	}
	return ctlBody(resp, c.stdout)
}

func ctlRun(c *ctlClient, args []string, stderr io.Writer) error {
	fs := flag.NewFlagSet("selcached ctl run", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		bench    = fs.String("bench", "", "benchmark name (required)")
		config   = fs.String("config", "base", "machine configuration")
		mech     = fs.String("mech", "bypass", "bypass|victim")
		version  = fs.String("version", "", "restrict response to one version")
		classify = fs.Bool("classify", false, "attribute misses to conflict/capacity/compulsory")
		policy   = fs.String("policy", "lru", "replacement policy: lru|ehc")
		waymemo  = fs.Bool("waymemo", false, "enable way memoization")
		energyOn = fs.Bool("energy", false, "enable the energy model")
		timeout  = fs.Int64("timeout-ms", 0, "request deadline in milliseconds (0: server default)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q (flags only)", fs.Arg(0))
	}
	if *bench == "" {
		return errors.New("ctl run: -bench is required")
	}
	body := fmt.Sprintf(`{"workload":%q,"config":%q,"mechanism":%q,"classify":%v,"policy":%q,"waymemo":%v,"energy":%v,"version":%q,"timeout_ms":%d}`,
		*bench, *config, *mech, *classify, *policy, *waymemo, *energyOn, *version, *timeout)
	return c.post("/v1/run", body)
}

// ctlEstimate asks the zero-cost tier for a symbolic locality estimate —
// no simulation runs, so the answer is immediate even on a busy server.
func ctlEstimate(c *ctlClient, args []string, stderr io.Writer) error {
	fs := flag.NewFlagSet("selcached ctl estimate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		bench  = fs.String("bench", "", "benchmark name or synthetic family#seed (required)")
		config = fs.String("config", "base", "machine configuration")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q (flags only)", fs.Arg(0))
	}
	if *bench == "" {
		return errors.New("ctl estimate: -bench is required")
	}
	body := fmt.Sprintf(`{"workload":%q,"config":%q}`, *bench, *config)
	return c.post("/v1/estimate", body)
}

func ctlSweep(c *ctlClient, args []string, stderr io.Writer) error {
	fs := flag.NewFlagSet("selcached ctl sweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		benches = fs.String("benches", "", "comma-separated benchmarks (empty: all)")
		configs = fs.String("configs", "", "comma-separated configurations (empty: all)")
		mechs   = fs.String("mechs", "", "comma-separated mechanisms (empty: both)")
		timeout = fs.Int64("timeout-ms", 0, "request deadline in milliseconds (0: server default)")
		estTop  = fs.Int("estimate-top", 0, "prune each sweep to its N most interesting workloads (needs server -estimate-plan)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q (flags only)", fs.Arg(0))
	}
	body := fmt.Sprintf(`{"workloads":%s,"configs":%s,"mechanisms":%s,"timeout_ms":%d,"estimate_top":%d}`,
		jsonList(*benches), jsonList(*configs), jsonList(*mechs), *timeout, *estTop)
	return c.post("/v1/sweep", body)
}

func ctlResult(c *ctlClient, args []string, stderr io.Writer) error {
	fs := flag.NewFlagSet("selcached ctl result", flag.ContinueOnError)
	fs.SetOutput(stderr)
	key := fs.String("key", "", "content-addressed result key (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q (flags only)", fs.Arg(0))
	}
	if *key == "" {
		return errors.New("ctl result: -key is required")
	}
	return c.get("/v1/results/"+*key, nil)
}

// ctlCluster inspects a coordinator: status and shards stream the raw
// JSON, workers renders a human-readable membership table.
func ctlCluster(c *ctlClient, args []string) error {
	if len(args) == 0 {
		return errors.New("ctl cluster: missing subaction (status|workers|shards)")
	}
	switch args[0] {
	case "status":
		return c.get("/v1/cluster/status", args[1:])
	case "shards":
		return c.get("/v1/cluster/shards", args[1:])
	case "workers":
		if len(args) > 1 {
			return fmt.Errorf("unexpected argument %q", args[1])
		}
		return ctlClusterWorkers(c)
	default:
		return fmt.Errorf("ctl cluster: unknown subaction %q (status|workers|shards)", args[0])
	}
}

func ctlClusterWorkers(c *ctlClient) error {
	resp, err := c.fetch("/v1/cluster/status")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("server returned %s: %s", resp.Status, bytes.TrimSpace(b))
	}
	var st cluster.Status
	if err := json.Unmarshal(b, &st); err != nil {
		return fmt.Errorf("ctl: decoding cluster status: %w", err)
	}
	fmt.Fprintf(c.stdout, "workers: %d live / %d total\n", st.LiveWorkers, st.TotalWorkers)
	tw := tabwriter.NewWriter(c.stdout, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "ADDR\tSTATE\tVERSION\tIN-FLIGHT\tCELLS\tERRORS\tLAST-OK")
	for _, w := range st.Workers {
		lastOK := "never"
		if w.LastOKSecAgo >= 0 {
			lastOK = fmt.Sprintf("%.0fs ago", w.LastOKSecAgo)
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%d\t%d\t%d\t%s\n", w.Addr, w.State, w.Version, w.InFlight, w.Cells, w.Errors, lastOK)
	}
	return tw.Flush()
}

// jsonList renders a comma-separated flag value as a JSON string array
// ("[]" when empty, which the server treats as "all").
func jsonList(csv string) string {
	if csv == "" {
		return "[]"
	}
	parts := strings.Split(csv, ",")
	quoted := make([]string, len(parts))
	for i, p := range parts {
		quoted[i] = fmt.Sprintf("%q", strings.TrimSpace(p))
	}
	return "[" + strings.Join(quoted, ",") + "]"
}

// ctlBody streams the response to stdout and turns non-2xx statuses into
// a command error (after printing the server's JSON error body).
func ctlBody(resp *http.Response, stdout io.Writer) error {
	defer resp.Body.Close()
	if _, err := io.Copy(stdout, resp.Body); err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("server returned %s", resp.Status)
	}
	return nil
}
