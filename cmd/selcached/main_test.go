package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"selcache/internal/cluster"
)

func TestServeFlagErrors(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"-no-such-flag"}, &out, &errw); err == nil {
		t.Fatal("unknown flag accepted")
	}
	err := run([]string{"positional"}, &out, &errw)
	if err == nil || !strings.Contains(err.Error(), `unexpected argument "positional"`) {
		t.Fatalf("positional arg error = %v", err)
	}
	if !strings.Contains(err.Error(), "selcached ctl") {
		t.Fatalf("error %v should hint at ctl mode", err)
	}
	err = run([]string{"-worker"}, &out, &errw)
	if err == nil || !strings.Contains(err.Error(), "-worker requires -join") {
		t.Fatalf("-worker without -join error = %v", err)
	}
	err = run([]string{"-join", "http://127.0.0.1:1"}, &out, &errw)
	if err == nil || !strings.Contains(err.Error(), "-join only makes sense with -worker") {
		t.Fatalf("-join without -worker error = %v", err)
	}
}

// TestHTTPServerHardened pins the listener-level timeouts: without a
// ReadHeaderTimeout one slowloris client dribbling header bytes holds a
// connection forever, and without an IdleTimeout abandoned keep-alives
// accumulate.
func TestHTTPServerHardened(t *testing.T) {
	s := newHTTPServer(http.NotFoundHandler())
	if s.ReadHeaderTimeout <= 0 {
		t.Fatal("ReadHeaderTimeout unset: slowloris headers hold connections forever")
	}
	if s.IdleTimeout <= 0 {
		t.Fatal("IdleTimeout unset: abandoned keep-alive connections are never reaped")
	}
	if s.ReadTimeout != 0 || s.WriteTimeout != 0 {
		t.Fatal("ReadTimeout/WriteTimeout must stay unset: a cold simulation may legitimately outlive any fixed write deadline")
	}
}

func TestCtlFlagErrors(t *testing.T) {
	var out, errw bytes.Buffer
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"missing action", []string{"ctl"}, "missing action"},
		{"unknown action", []string{"ctl", "dance"}, `unknown action "dance"`},
		{"run missing bench", []string{"ctl", "run"}, "-bench is required"},
		{"run positional", []string{"ctl", "run", "-bench", "swim", "extra"}, `unexpected argument "extra"`},
		{"estimate missing bench", []string{"ctl", "estimate"}, "-bench is required"},
		{"estimate positional", []string{"ctl", "estimate", "-bench", "swim", "extra"}, `unexpected argument "extra"`},
		{"sweep positional", []string{"ctl", "sweep", "extra"}, `unexpected argument "extra"`},
		{"result missing key", []string{"ctl", "result"}, "-key is required"},
		{"health positional", []string{"ctl", "health", "extra"}, `unexpected argument "extra"`},
		{"cluster missing subaction", []string{"ctl", "cluster"}, "missing subaction"},
		{"cluster unknown subaction", []string{"ctl", "cluster", "dance"}, `unknown subaction "dance"`},
		{"cluster workers positional", []string{"ctl", "cluster", "workers", "extra"}, `unexpected argument "extra"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := run(tc.args, &out, &errw)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("run(%v) = %v, want error containing %q", tc.args, err, tc.want)
			}
		})
	}
}

func TestJSONList(t *testing.T) {
	cases := map[string]string{
		"":                  "[]",
		"swim":              `["swim"]`,
		"swim,compress":     `["swim","compress"]`,
		" swim , compress ": `["swim","compress"]`,
		`weird"name`:        `["weird\"name"]`,
		"a,b,c":             `["a","b","c"]`,
	}
	for in, want := range cases {
		if got := jsonList(in); got != want {
			t.Errorf("jsonList(%q) = %s, want %s", in, got, want)
		}
	}
}

// TestCtlAgainstServer exercises every ctl action against a stub server,
// including the non-2xx → error contract.
func TestCtlAgainstServer(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/healthz":
			io.WriteString(w, "ok\n")
		case "/v1/run":
			body, _ := io.ReadAll(r.Body)
			var req map[string]any
			if err := json.Unmarshal(body, &req); err != nil {
				t.Errorf("ctl run sent invalid JSON: %s", body)
			}
			if req["workload"] != "swim" || req["mechanism"] != "victim" {
				t.Errorf("ctl run body = %s", body)
			}
			io.WriteString(w, `{"key":"abc"}`)
		case "/v1/estimate":
			body, _ := io.ReadAll(r.Body)
			var req map[string]any
			if err := json.Unmarshal(body, &req); err != nil {
				t.Errorf("ctl estimate sent invalid JSON: %s", body)
			}
			if req["workload"] != "vpenta" || req["config"] != "larger-l1" {
				t.Errorf("ctl estimate body = %s", body)
			}
			io.WriteString(w, `{"verdict":"exact"}`)
		case "/v1/sweep":
			body, _ := io.ReadAll(r.Body)
			if !strings.Contains(string(body), `"workloads":["swim","compress"]`) {
				t.Errorf("ctl sweep body = %s", body)
			}
			if !strings.Contains(string(body), `"estimate_top":2`) {
				t.Errorf("ctl sweep body missing estimate_top: %s", body)
			}
			io.WriteString(w, `{"sweeps":[]}`)
		case "/v1/results/deadbeef":
			w.WriteHeader(http.StatusNotFound)
			io.WriteString(w, `{"error":"no result"}`)
		default:
			t.Errorf("unexpected path %s", r.URL.Path)
			w.WriteHeader(http.StatusTeapot)
		}
	}))
	defer ts.Close()

	var errw bytes.Buffer
	var out bytes.Buffer
	if err := run([]string{"ctl", "-addr", ts.URL, "health"}, &out, &errw); err != nil {
		t.Fatalf("ctl health: %v", err)
	}
	if out.String() != "ok\n" {
		t.Fatalf("ctl health output %q", out.String())
	}

	out.Reset()
	if err := run([]string{"ctl", "-addr", ts.URL, "run", "-bench", "swim", "-mech", "victim"}, &out, &errw); err != nil {
		t.Fatalf("ctl run: %v", err)
	}
	if !strings.Contains(out.String(), `"key":"abc"`) {
		t.Fatalf("ctl run output %q", out.String())
	}

	out.Reset()
	if err := run([]string{"ctl", "-addr", ts.URL, "estimate", "-bench", "vpenta", "-config", "larger-l1"}, &out, &errw); err != nil {
		t.Fatalf("ctl estimate: %v", err)
	}
	if !strings.Contains(out.String(), `"verdict":"exact"`) {
		t.Fatalf("ctl estimate output %q", out.String())
	}

	out.Reset()
	if err := run([]string{"ctl", "-addr", ts.URL, "sweep", "-benches", "swim,compress", "-estimate-top", "2"}, &out, &errw); err != nil {
		t.Fatalf("ctl sweep: %v", err)
	}

	// Non-2xx: the body is still printed, and the command fails.
	out.Reset()
	err := run([]string{"ctl", "-addr", ts.URL, "result", "-key", "deadbeef"}, &out, &errw)
	if err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("ctl result on 404 = %v, want status error", err)
	}
	if !strings.Contains(out.String(), "no result") {
		t.Fatalf("ctl result should print the error body, got %q", out.String())
	}
}

// TestCtlTimeout pins the client-side deadline: a wedged server must not
// hang ctl forever, and the resulting error must name the target address so
// a misconfigured -addr is diagnosable.
func TestCtlTimeout(t *testing.T) {
	release := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release // wedge until the test ends
	}))
	defer func() { close(release); ts.Close() }()

	var out, errw bytes.Buffer
	start := time.Now()
	err := run([]string{"ctl", "-addr", ts.URL, "-timeout", "50ms", "health"}, &out, &errw)
	if err == nil {
		t.Fatal("ctl against a wedged server succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("ctl took %v to give up; timeout not applied", elapsed)
	}
	if !strings.Contains(err.Error(), ts.URL) {
		t.Fatalf("timeout error %v should name the target %s", err, ts.URL)
	}
	var ne interface{ Timeout() bool }
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("error %v should unwrap to a timeout", err)
	}
}

// TestCtlDialErrorNamesAddress covers the connection-refused path: the
// wrapped error must carry the base URL.
func TestCtlDialErrorNamesAddress(t *testing.T) {
	// A listener that is closed immediately yields a port that refuses
	// connections (racy reuse is possible but vanishingly unlikely here).
	ts := httptest.NewServer(http.NotFoundHandler())
	dead := ts.URL
	ts.Close()

	var out, errw bytes.Buffer
	err := run([]string{"ctl", "-addr", dead, "-timeout", "2s", "workloads"}, &out, &errw)
	if err == nil {
		t.Fatal("ctl against a closed port succeeded")
	}
	if !strings.Contains(err.Error(), dead) {
		t.Fatalf("dial error %v should name the target %s", err, dead)
	}

	// The estimate action goes through the same bounded client, so its
	// dial error must carry the target address too.
	err = run([]string{"ctl", "-addr", dead, "-timeout", "2s", "estimate", "-bench", "swim"}, &out, &errw)
	if err == nil {
		t.Fatal("ctl estimate against a closed port succeeded")
	}
	if !strings.Contains(err.Error(), dead) {
		t.Fatalf("estimate dial error %v should name the target %s", err, dead)
	}
}

func TestCtlRejectsNegativeTimeout(t *testing.T) {
	var out, errw bytes.Buffer
	err := run([]string{"ctl", "-timeout", "-1s", "health"}, &out, &errw)
	if err == nil || !strings.Contains(err.Error(), "negative -timeout") {
		t.Fatalf("negative timeout error = %v", err)
	}
}

// TestServeEndToEnd boots the real daemon on a free port, runs one
// simulation through it via ctl, then drains it with SIGTERM — the same
// lifecycle make serve-smoke exercises from the shell.
func TestServeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("daemon end-to-end test skipped in -short mode")
	}
	var serveErrw lockedBuffer
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- runServe([]string{"-addr", "127.0.0.1:0", "-workers", "2"}, io.Discard, &serveErrw, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("daemon exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}
	base := "http://" + addr

	var out, errw bytes.Buffer
	if err := run([]string{"ctl", "-addr", base, "health"}, &out, &errw); err != nil {
		t.Fatalf("ctl health: %v", err)
	}
	out.Reset()
	if err := run([]string{"ctl", "-addr", base, "run", "-bench", "compress"}, &out, &errw); err != nil {
		t.Fatalf("ctl run: %v", err)
	}
	var rr struct {
		Key      string `json:"key"`
		Workload string `json:"workload"`
	}
	if err := json.Unmarshal(out.Bytes(), &rr); err != nil || rr.Workload != "compress" {
		t.Fatalf("ctl run output %q (err %v)", out.String(), err)
	}

	// SIGTERM → graceful drain → clean exit.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exit error: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}
	logs := serveErrw.String()
	for _, want := range []string{"listening on", "draining", "drained, exiting"} {
		if !strings.Contains(logs, want) {
			t.Errorf("daemon log missing %q:\n%s", want, logs)
		}
	}
}

// flakyListener closes the first drops accepted connections before any
// bytes flow, simulating a server mid-restart; later connections serve
// normally.
type flakyListener struct {
	net.Listener
	drops atomic.Int32
}

func (l *flakyListener) Accept() (net.Conn, error) {
	for {
		c, err := l.Listener.Accept()
		if err != nil {
			return c, err
		}
		if l.drops.Add(-1) >= 0 {
			c.Close()
			continue
		}
		return c, nil
	}
}

func newFlakyServer(t *testing.T, drops int32, h http.Handler) (*flakyListener, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fl := &flakyListener{Listener: ln}
	fl.drops.Store(drops)
	go http.Serve(fl, h)
	t.Cleanup(func() { ln.Close() })
	return fl, "http://" + ln.Addr().String()
}

// TestCtlGetRetriesTransientErrors: an idempotent read survives a server
// whose first two connections die mid-restart.
func TestCtlGetRetriesTransientErrors(t *testing.T) {
	_, url := newFlakyServer(t, 2, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/healthz" {
			t.Errorf("unexpected path %s", r.URL.Path)
		}
		io.WriteString(w, `{"status":"ok"}`)
	}))
	var out, errw bytes.Buffer
	if err := run([]string{"ctl", "-addr", url, "health"}, &out, &errw); err != nil {
		t.Fatalf("ctl health did not retry past transient errors: %v", err)
	}
	if !strings.Contains(out.String(), `"ok"`) {
		t.Fatalf("ctl health output %q", out.String())
	}
}

// TestCtlPostIsSingleShot: run/sweep POSTs must not be replayed by the
// client — one dropped connection is one failure.
func TestCtlPostIsSingleShot(t *testing.T) {
	fl, url := newFlakyServer(t, 1, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, `{"key":"x"}`)
	}))
	var out, errw bytes.Buffer
	err := run([]string{"ctl", "-addr", url, "run", "-bench", "swim"}, &out, &errw)
	if err == nil {
		t.Fatal("ctl run succeeded through a dropped connection; POST was retried")
	}
	if got := fl.drops.Load(); got != 0 {
		t.Fatalf("POST consumed %d connections, want exactly 1", 1-got)
	}
}

// TestCtlClusterWorkersTable renders the membership table from a stub
// coordinator.
func TestCtlClusterWorkersTable(t *testing.T) {
	st := cluster.Status{
		LiveWorkers:  1,
		TotalWorkers: 2,
		Workers: []cluster.WorkerStatus{
			{Addr: "http://w1:1", State: "up", Version: "v1.2 go1.22", Cells: 13, LastOKSecAgo: 2},
			{Addr: "http://w2:1", State: "down", Errors: 4, LastOKSecAgo: -1},
		},
	}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/cluster/status" {
			t.Errorf("unexpected path %s", r.URL.Path)
		}
		json.NewEncoder(w).Encode(st)
	}))
	defer ts.Close()

	var out, errw bytes.Buffer
	if err := run([]string{"ctl", "-addr", ts.URL, "cluster", "workers"}, &out, &errw); err != nil {
		t.Fatalf("ctl cluster workers: %v", err)
	}
	for _, want := range []string{"1 live / 2 total", "http://w1:1", "up", "v1.2 go1.22", "http://w2:1", "down", "never"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("table missing %q:\n%s", want, out.String())
		}
	}
}

// TestClusterEndToEnd boots a real coordinator daemon and a real worker
// daemon, waits for the worker to join, routes a cell through the cluster,
// and drains both with one SIGTERM — the in-process twin of
// scripts/cluster-smoke.sh.
func TestClusterEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("daemon end-to-end test skipped in -short mode")
	}
	var coLog, wLog lockedBuffer
	coReady, wReady := make(chan string, 1), make(chan string, 1)
	coDone, wDone := make(chan error, 1), make(chan error, 1)
	go func() {
		coDone <- runServe([]string{"-addr", "127.0.0.1:0", "-workers", "2", "-health-interval", "100ms"},
			io.Discard, &coLog, coReady)
	}()
	var coAddr string
	select {
	case coAddr = <-coReady:
	case err := <-coDone:
		t.Fatalf("coordinator exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("coordinator never became ready")
	}
	base := "http://" + coAddr

	go func() {
		wDone <- runServe([]string{"-addr", "127.0.0.1:0", "-workers", "2", "-worker", "-join", base, "-health-interval", "100ms"},
			io.Discard, &wLog, wReady)
	}()
	var wAddr string
	select {
	case wAddr = <-wReady:
	case err := <-wDone:
		t.Fatalf("worker exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("worker never became ready")
	}

	// The announce loop registers within an interval or two.
	var st cluster.Status
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/cluster/status")
		if err == nil {
			err = json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
		}
		if err == nil && st.LiveWorkers == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker never joined (status %+v, err %v)", st, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if len(st.Workers) != 1 || st.Workers[0].Addr != "http://"+wAddr {
		t.Fatalf("membership = %+v, want the worker at %s", st.Workers, wAddr)
	}

	// Role reporting end to end.
	var out, errw bytes.Buffer
	if err := run([]string{"ctl", "-addr", base, "health"}, &out, &errw); err != nil {
		t.Fatalf("ctl health: %v", err)
	}
	if !strings.Contains(out.String(), `"role":"coordinator"`) {
		t.Fatalf("coordinator health = %s", out.String())
	}
	out.Reset()
	if err := run([]string{"ctl", "-addr", "http://" + wAddr, "health"}, &out, &errw); err != nil {
		t.Fatalf("ctl health (worker): %v", err)
	}
	if !strings.Contains(out.String(), `"role":"worker"`) {
		t.Fatalf("worker health = %s", out.String())
	}

	// A cell through the coordinator lands on the worker.
	out.Reset()
	if err := run([]string{"ctl", "-addr", base, "run", "-bench", "compress"}, &out, &errw); err != nil {
		t.Fatalf("ctl run: %v", err)
	}
	resp, err := http.Get(base + "/v1/cluster/status")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Stats.RemoteCells != 1 {
		t.Fatalf("stats after run = %+v, want one remote cell", st.Stats)
	}

	out.Reset()
	if err := run([]string{"ctl", "-addr", base, "cluster", "workers"}, &out, &errw); err != nil {
		t.Fatalf("ctl cluster workers: %v", err)
	}
	if !strings.Contains(out.String(), "1 live / 1 total") || !strings.Contains(out.String(), wAddr) {
		t.Fatalf("cluster workers table:\n%s", out.String())
	}

	// One SIGTERM reaches both daemons (process-wide); both drain cleanly.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	for name, ch := range map[string]chan error{"coordinator": coDone, "worker": wDone} {
		select {
		case err := <-ch:
			if err != nil {
				t.Fatalf("%s exit error: %v", name, err)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("%s did not exit after SIGTERM", name)
		}
	}
	if !strings.Contains(wLog.String(), fmt.Sprintf("joined cluster at %s", base)) {
		t.Fatalf("worker log missing join line:\n%s", wLog.String())
	}
}

// lockedBuffer guards the daemon's stderr writer: the serve goroutine
// writes while the test goroutine reads.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
