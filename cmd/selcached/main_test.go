package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

func TestServeFlagErrors(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"-no-such-flag"}, &out, &errw); err == nil {
		t.Fatal("unknown flag accepted")
	}
	err := run([]string{"positional"}, &out, &errw)
	if err == nil || !strings.Contains(err.Error(), `unexpected argument "positional"`) {
		t.Fatalf("positional arg error = %v", err)
	}
	if !strings.Contains(err.Error(), "selcached ctl") {
		t.Fatalf("error %v should hint at ctl mode", err)
	}
}

func TestCtlFlagErrors(t *testing.T) {
	var out, errw bytes.Buffer
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"missing action", []string{"ctl"}, "missing action"},
		{"unknown action", []string{"ctl", "dance"}, `unknown action "dance"`},
		{"run missing bench", []string{"ctl", "run"}, "-bench is required"},
		{"run positional", []string{"ctl", "run", "-bench", "swim", "extra"}, `unexpected argument "extra"`},
		{"sweep positional", []string{"ctl", "sweep", "extra"}, `unexpected argument "extra"`},
		{"result missing key", []string{"ctl", "result"}, "-key is required"},
		{"health positional", []string{"ctl", "health", "extra"}, `unexpected argument "extra"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := run(tc.args, &out, &errw)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("run(%v) = %v, want error containing %q", tc.args, err, tc.want)
			}
		})
	}
}

func TestJSONList(t *testing.T) {
	cases := map[string]string{
		"":                  "[]",
		"swim":              `["swim"]`,
		"swim,compress":     `["swim","compress"]`,
		" swim , compress ": `["swim","compress"]`,
		`weird"name`:        `["weird\"name"]`,
		"a,b,c":             `["a","b","c"]`,
	}
	for in, want := range cases {
		if got := jsonList(in); got != want {
			t.Errorf("jsonList(%q) = %s, want %s", in, got, want)
		}
	}
}

// TestCtlAgainstServer exercises every ctl action against a stub server,
// including the non-2xx → error contract.
func TestCtlAgainstServer(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/healthz":
			io.WriteString(w, "ok\n")
		case "/v1/run":
			body, _ := io.ReadAll(r.Body)
			var req map[string]any
			if err := json.Unmarshal(body, &req); err != nil {
				t.Errorf("ctl run sent invalid JSON: %s", body)
			}
			if req["workload"] != "swim" || req["mechanism"] != "victim" {
				t.Errorf("ctl run body = %s", body)
			}
			io.WriteString(w, `{"key":"abc"}`)
		case "/v1/sweep":
			body, _ := io.ReadAll(r.Body)
			if !strings.Contains(string(body), `"workloads":["swim","compress"]`) {
				t.Errorf("ctl sweep body = %s", body)
			}
			io.WriteString(w, `{"sweeps":[]}`)
		case "/v1/results/deadbeef":
			w.WriteHeader(http.StatusNotFound)
			io.WriteString(w, `{"error":"no result"}`)
		default:
			t.Errorf("unexpected path %s", r.URL.Path)
			w.WriteHeader(http.StatusTeapot)
		}
	}))
	defer ts.Close()

	var errw bytes.Buffer
	var out bytes.Buffer
	if err := run([]string{"ctl", "-addr", ts.URL, "health"}, &out, &errw); err != nil {
		t.Fatalf("ctl health: %v", err)
	}
	if out.String() != "ok\n" {
		t.Fatalf("ctl health output %q", out.String())
	}

	out.Reset()
	if err := run([]string{"ctl", "-addr", ts.URL, "run", "-bench", "swim", "-mech", "victim"}, &out, &errw); err != nil {
		t.Fatalf("ctl run: %v", err)
	}
	if !strings.Contains(out.String(), `"key":"abc"`) {
		t.Fatalf("ctl run output %q", out.String())
	}

	out.Reset()
	if err := run([]string{"ctl", "-addr", ts.URL, "sweep", "-benches", "swim,compress"}, &out, &errw); err != nil {
		t.Fatalf("ctl sweep: %v", err)
	}

	// Non-2xx: the body is still printed, and the command fails.
	out.Reset()
	err := run([]string{"ctl", "-addr", ts.URL, "result", "-key", "deadbeef"}, &out, &errw)
	if err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("ctl result on 404 = %v, want status error", err)
	}
	if !strings.Contains(out.String(), "no result") {
		t.Fatalf("ctl result should print the error body, got %q", out.String())
	}
}

// TestCtlTimeout pins the client-side deadline: a wedged server must not
// hang ctl forever, and the resulting error must name the target address so
// a misconfigured -addr is diagnosable.
func TestCtlTimeout(t *testing.T) {
	release := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release // wedge until the test ends
	}))
	defer func() { close(release); ts.Close() }()

	var out, errw bytes.Buffer
	start := time.Now()
	err := run([]string{"ctl", "-addr", ts.URL, "-timeout", "50ms", "health"}, &out, &errw)
	if err == nil {
		t.Fatal("ctl against a wedged server succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("ctl took %v to give up; timeout not applied", elapsed)
	}
	if !strings.Contains(err.Error(), ts.URL) {
		t.Fatalf("timeout error %v should name the target %s", err, ts.URL)
	}
	var ne interface{ Timeout() bool }
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("error %v should unwrap to a timeout", err)
	}
}

// TestCtlDialErrorNamesAddress covers the connection-refused path: the
// wrapped error must carry the base URL.
func TestCtlDialErrorNamesAddress(t *testing.T) {
	// A listener that is closed immediately yields a port that refuses
	// connections (racy reuse is possible but vanishingly unlikely here).
	ts := httptest.NewServer(http.NotFoundHandler())
	dead := ts.URL
	ts.Close()

	var out, errw bytes.Buffer
	err := run([]string{"ctl", "-addr", dead, "-timeout", "2s", "workloads"}, &out, &errw)
	if err == nil {
		t.Fatal("ctl against a closed port succeeded")
	}
	if !strings.Contains(err.Error(), dead) {
		t.Fatalf("dial error %v should name the target %s", err, dead)
	}
}

func TestCtlRejectsNegativeTimeout(t *testing.T) {
	var out, errw bytes.Buffer
	err := run([]string{"ctl", "-timeout", "-1s", "health"}, &out, &errw)
	if err == nil || !strings.Contains(err.Error(), "negative -timeout") {
		t.Fatalf("negative timeout error = %v", err)
	}
}

// TestServeEndToEnd boots the real daemon on a free port, runs one
// simulation through it via ctl, then drains it with SIGTERM — the same
// lifecycle make serve-smoke exercises from the shell.
func TestServeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("daemon end-to-end test skipped in -short mode")
	}
	var serveErrw lockedBuffer
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- runServe([]string{"-addr", "127.0.0.1:0", "-workers", "2"}, io.Discard, &serveErrw, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("daemon exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}
	base := "http://" + addr

	var out, errw bytes.Buffer
	if err := run([]string{"ctl", "-addr", base, "health"}, &out, &errw); err != nil {
		t.Fatalf("ctl health: %v", err)
	}
	out.Reset()
	if err := run([]string{"ctl", "-addr", base, "run", "-bench", "compress"}, &out, &errw); err != nil {
		t.Fatalf("ctl run: %v", err)
	}
	var rr struct {
		Key      string `json:"key"`
		Workload string `json:"workload"`
	}
	if err := json.Unmarshal(out.Bytes(), &rr); err != nil || rr.Workload != "compress" {
		t.Fatalf("ctl run output %q (err %v)", out.String(), err)
	}

	// SIGTERM → graceful drain → clean exit.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exit error: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}
	logs := serveErrw.String()
	for _, want := range []string{"listening on", "draining", "drained, exiting"} {
		if !strings.Contains(logs, want) {
			t.Errorf("daemon log missing %q:\n%s", want, logs)
		}
	}
}

// lockedBuffer guards the daemon's stderr writer: the serve goroutine
// writes while the test goroutine reads.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
