// Command validate runs the differential oracle over the benchmark matrix:
// every workload × version × hardware mechanism cell is simulated twice, by
// the optimized engine and by the naive reference model (internal/oracle),
// in lockstep with cross-checking after every event. It also checks the
// compiled loopir interpreter against the tree-walking reference
// interpreter for every workload's stream classes, validates the marker
// protocol of selective streams, and cross-checks the columnar batched
// replay engine against the scalar path (recorded trace, both replays,
// RunStats compared field by field).
//
//	validate                 # full matrix: 13 workloads × 5 versions × both mechanisms
//	validate -short          # spot-check subset (one workload per class)
//	validate -configs all    # additionally sweep the paper's variant machine configs
//	validate -workloads swim,adi -mech victim
//	validate -policy ehc -waymemo on   # sweep the replacement-policy axis
//
// The replacement-policy and way-memoization axes default to the paper's
// configuration (LRU, memo off) on full runs; -short sweeps both axes so
// the smoke gate lockstep-checks EHC and the way memo against the naive
// reference. Way-memo cells also enable the energy model, so the pJ
// accounting is part of the RunStats equality check.
//
// Exit status is non-zero when any cell diverges; the first divergence of
// each failing cell is reported in the golden-trace-differ style (event
// ordinal, the event itself, the field, both sides' values).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"selcache/internal/core"
	"selcache/internal/loopir"
	"selcache/internal/oracle"
	"selcache/internal/parallel"
	"selcache/internal/sim"
	"selcache/internal/trace"
	"selcache/internal/workloads"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "validate: %v\n", err)
		os.Exit(1)
	}
}

// shortWorkloads is the -short spot-check: one benchmark per access-pattern
// class, chosen among the cheaper streams of each.
var shortWorkloads = []string{"applu", "vpenta", "tpc-c"}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("validate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	short := fs.Bool("short", false, "spot-check one workload per class instead of all 13")
	list := fs.Bool("list", false, "list the cells that would run, without running them")
	workloadsFlag := fs.String("workloads", "", "comma-separated workload subset (default: all)")
	mech := fs.String("mech", "both", "hardware mechanism: bypass|victim|both")
	policy := fs.String("policy", "", "replacement policy: lru|ehc|both (default: lru, or both with -short)")
	waymemo := fs.String("waymemo", "", "way memoization: off|on|both (default: off, or both with -short)")
	configs := fs.String("configs", "base", "machine configurations: base|all (the paper's six)")
	checkEvery := fs.Uint64("checkevery", oracle.DefaultCheckEvery, "deep structural check period, in events")
	workers := fs.Int("workers", 0, "worker goroutines (0 = one per CPU)")
	verbose := fs.Bool("v", false, "print every cell, not just failures")
	if err := fs.Parse(args); err != nil {
		return err
	}

	selected, err := selectWorkloads(*workloadsFlag, *short)
	if err != nil {
		return err
	}
	mechs, err := selectMechanisms(*mech)
	if err != nil {
		return err
	}
	policies, err := selectPolicies(*policy, *short)
	if err != nil {
		return err
	}
	memos, err := selectMemos(*waymemo, *short)
	if err != nil {
		return err
	}
	var machines []sim.Config
	switch *configs {
	case "base":
		machines = []sim.Config{sim.Base()}
	case "all":
		machines = sim.ExperimentConfigs()
	default:
		return fmt.Errorf("unknown -configs %q (want base|all)", *configs)
	}

	cells := buildCells(selected, machines, mechs, policies, memos)
	if *list {
		for _, c := range cells {
			fmt.Fprintln(stdout, c.name())
		}
		return nil
	}

	fmt.Fprintf(stdout, "validate: %d lockstep cells + %d interpreter checks + %d batched-replay checks over %d workloads\n",
		len(cells), len(selected)*core.NumStreams, len(cells), len(selected))

	failures := 0
	report := func(name string, err error) {
		if err != nil {
			failures++
			fmt.Fprintf(stdout, "FAIL %s\n     %v\n", name, err)
		} else if *verbose {
			fmt.Fprintf(stdout, "ok   %s\n", name)
		}
	}

	// Interpreter equivalence first: it is cheap and a divergence there
	// would invalidate the machine cells' streams anyway.
	type interpResult struct {
		name string
		err  error
	}
	interp := parallel.Map(parallel.Workers(*workers), len(selected)*core.NumStreams, func(i int) interpResult {
		w := selected[i/core.NumStreams]
		stream := core.Stream(i % core.NumStreams)
		return interpResult{
			name: fmt.Sprintf("interp %s/%s", w.Name, stream),
			err:  checkInterpreters(w, stream),
		}
	})
	for _, r := range interp {
		report(r.name, r.err)
	}

	results := parallel.Map(parallel.Workers(*workers), len(cells), func(i int) interpResult {
		return interpResult{name: cells[i].name(), err: runCell(cells[i], *checkEvery)}
	})
	for _, r := range results {
		report(r.name, r.err)
	}

	// Batched-replay equivalence: record each cell's trace once and replay
	// it through both the scalar and the columnar engine; every statistic
	// the run produces must match exactly.
	batched := parallel.Map(parallel.Workers(*workers), len(cells), func(i int) interpResult {
		return interpResult{name: "batched " + cells[i].name(), err: checkBatchedReplay(cells[i])}
	})
	for _, r := range batched {
		report(r.name, r.err)
	}

	total := len(interp) + len(results) + len(batched)
	if failures > 0 {
		return fmt.Errorf("%d of %d checks diverged", failures, total)
	}
	fmt.Fprintf(stdout, "validate: all %d checks agree\n", total)
	return nil
}

func selectWorkloads(csv string, short bool) ([]workloads.Workload, error) {
	if csv == "" && short {
		csv = strings.Join(shortWorkloads, ",")
	}
	if csv == "" {
		return workloads.All(), nil
	}
	var out []workloads.Workload
	for _, name := range strings.Split(csv, ",") {
		w, ok := workloads.ByName(strings.TrimSpace(name))
		if !ok {
			return nil, fmt.Errorf("unknown workload %q", name)
		}
		out = append(out, w)
	}
	return out, nil
}

func selectMechanisms(s string) ([]sim.HWKind, error) {
	switch s {
	case "bypass":
		return []sim.HWKind{sim.HWBypass}, nil
	case "victim":
		return []sim.HWKind{sim.HWVictim}, nil
	case "both":
		return []sim.HWKind{sim.HWBypass, sim.HWVictim}, nil
	}
	return nil, fmt.Errorf("unknown -mech %q (want bypass|victim|both)", s)
}

// selectPolicies resolves the replacement-policy axis: the paper's LRU on
// full runs, both policies under -short so the smoke gate covers EHC.
func selectPolicies(s string, short bool) ([]sim.PolicyKind, error) {
	if s == "" {
		if short {
			s = "both"
		} else {
			s = "lru"
		}
	}
	switch s {
	case "lru":
		return []sim.PolicyKind{sim.PolicyLRU}, nil
	case "ehc":
		return []sim.PolicyKind{sim.PolicyEHC}, nil
	case "both":
		return []sim.PolicyKind{sim.PolicyLRU, sim.PolicyEHC}, nil
	}
	return nil, fmt.Errorf("unknown -policy %q (want lru|ehc|both)", s)
}

// selectMemos resolves the way-memoization axis, with the same -short
// default as selectPolicies.
func selectMemos(s string, short bool) ([]bool, error) {
	if s == "" {
		if short {
			s = "both"
		} else {
			s = "off"
		}
	}
	switch s {
	case "off":
		return []bool{false}, nil
	case "on":
		return []bool{true}, nil
	case "both":
		return []bool{false, true}, nil
	}
	return nil, fmt.Errorf("unknown -waymemo %q (want off|on|both)", s)
}

// cell is one lockstep run of the matrix.
type cell struct {
	workload workloads.Workload
	version  core.Version
	machine  sim.Config
	mech     sim.HWKind
	policy   sim.PolicyKind
	waymemo  bool
}

func (c cell) name() string {
	n := fmt.Sprintf("%s/%s/%s/%s", c.workload.Name, c.version, c.mech, c.machine.Name)
	if c.policy == sim.PolicyEHC {
		n += "/ehc"
	}
	if c.waymemo {
		n += "/memo"
	}
	return n
}

// options translates the cell into run options. Way-memo cells also turn
// the energy model on, so its picojoule accounting rides the RunStats
// equality check for free.
func (c cell) options() core.Options {
	o := core.DefaultOptions()
	o.Machine = c.machine
	if c.mech != sim.HWNone {
		o.Mechanism = c.mech
	}
	o.Policy = c.policy
	o.WayMemo = c.waymemo
	o.Energy = c.waymemo
	return o
}

// buildCells enumerates the matrix. Base and PureSoftware never touch the
// hardware mechanism (core wires HWNone for them), so they run once per
// machine configuration instead of once per mechanism.
func buildCells(ws []workloads.Workload, machines []sim.Config, mechs []sim.HWKind, policies []sim.PolicyKind, memos []bool) []cell {
	var cells []cell
	for _, w := range ws {
		for _, m := range machines {
			for _, pol := range policies {
				for _, memo := range memos {
					for _, v := range core.Versions() {
						c := cell{workload: w, version: v, machine: m, mech: sim.HWNone, policy: pol, waymemo: memo}
						if v == core.Base || v == core.PureSoftware {
							cells = append(cells, c)
							continue
						}
						for _, mech := range mechs {
							c.mech = mech
							cells = append(cells, c)
						}
					}
				}
			}
		}
	}
	return cells
}

// runCell prepares the version's program variant and interprets it against
// the engine/reference lockstep pair.
func runCell(c cell, checkEvery uint64) error {
	o := c.options()
	prog, _, _ := core.Prepare(c.workload.Build, c.version, o)
	s := oracle.NewShadow(o.Machine, core.SimOptions(c.version, o))
	s.CheckEvery = checkEvery
	loopir.Run(prog, s)
	_, err := s.Finish()
	return err
}

// checkBatchedReplay records the cell's event stream and replays it twice —
// through the scalar event-at-a-time path and through the columnar batched
// engine — and requires the full RunStats to match exactly (WallNanos, the
// one nondeterministic field, zeroed).
func checkBatchedReplay(c cell) error {
	o := c.options()
	t, _, _ := core.RecordTrace(c.workload.Build, c.version, o)
	sc := core.ReplayTraceScalar(t, c.version, o)
	ba := core.ReplayTraceBuffered(t, c.version, o, nil)
	sc.Sim.WallNanos, ba.Sim.WallNanos = 0, 0
	if sc.Sim != ba.Sim {
		return fmt.Errorf("batched replay diverges from scalar:\n     scalar  %+v\n     batched %+v", sc.Sim, ba.Sim)
	}
	return nil
}

// checkInterpreters compares the compiled interpreter's event stream with
// the tree-walking reference interpreter's for one workload stream class,
// and validates the marker protocol on the selective stream.
func checkInterpreters(w workloads.Workload, stream core.Stream) error {
	version := map[core.Stream]core.Version{
		core.StreamBase:      core.Base,
		core.StreamOptimized: core.PureSoftware,
		core.StreamSelective: core.Selective,
	}[stream]
	o := core.DefaultOptions()

	prog, _, _ := core.Prepare(w.Build, version, o)
	fast := trace.NewRecorder()
	loopir.Run(prog, fast)

	prog, _, _ = core.Prepare(w.Build, version, o)
	ref := trace.NewRecorder()
	loopir.RunReference(prog, ref)

	ft, rt := fast.Trace(), ref.Trace()
	if idx, ea, eb, diverged := trace.FirstDivergence(ft, rt); diverged {
		return fmt.Errorf("interpreters diverge at event %d: compiled %s, reference %s", idx, ea, eb)
	}
	if stream == core.StreamSelective {
		if err := oracle.CheckMarkerAlternation(ft); err != nil {
			return err
		}
	}
	return nil
}
