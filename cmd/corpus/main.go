// Command corpus synthesizes a parametric kernel corpus
// (internal/workloads/synth), sweeps every kernel through all five
// simulated versions on the worker pool, lockstep-checks a deterministic
// sample against the differential oracle, and emits per-class locality
// profiles as a selcache-corpus/v1 artifact.
//
//	corpus                       # 1000 distinct kernels over all 81 families
//	corpus -n 96 -sample 8 -out CORPUS_smoke.json
//	corpus -families deep/irregular/large/spread -n 40
//	corpus -list                 # enumerate the family names
//	corpus -verify CORPUS_smoke.json   # regenerate from the artifact's own
//	                                   # parameters and require byte equality
//
// With -estimate the pipeline scores the symbolic locality estimator
// (internal/locality) instead of profiling classes: every kernel is both
// simulated and statically analyzed, and the per-class prediction
// accuracy becomes a selcache-estimate/v1 artifact:
//
//	corpus -estimate -n 96 -out ESTIMATE_smoke.json
//
// With -energy the pipeline instead sweeps the mechanism-axis grid —
// {lru, ehc} replacement × way memoization {off, on}, energy model
// enabled — over base-version runs of every kernel and aggregates each
// combo into a selcache-energy/v1 artifact:
//
//	corpus -energy -n 48 -out ENERGY_smoke.json
//
// Everything either artifact records is deterministic, so two runs with
// the same parameters produce byte-identical files; -verify exploits that
// to turn a committed artifact into a regression gate (the artifact kind
// is sniffed from its schema field). Exit status is non-zero on any
// oracle divergence or verification mismatch.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"selcache/internal/core"
	"selcache/internal/corpus"
	"selcache/internal/report"
	"selcache/internal/sim"
	"selcache/internal/workloads/synth"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "corpus: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("corpus", flag.ContinueOnError)
	fs.SetOutput(stderr)
	n := fs.Int("n", 1000, "fingerprint-distinct kernels to synthesize")
	familiesFlag := fs.String("families", "", "comma-separated family subset (default: all 81)")
	seed := fs.Uint64("seed", 1, "base seed the per-family seed sequences start at")
	mech := fs.String("mech", "bypass", "hardware mechanism for the sweep: bypass|victim")
	sample := fs.Int("sample", 32, "kernels to lockstep-check against the differential oracle")
	workers := fs.Int("workers", 0, "worker goroutines (0 = one per CPU)")
	out := fs.String("out", "", "write the corpus-profile artifact (JSON) to this path")
	estimate := fs.Bool("estimate", false, "score the symbolic estimator against the simulator instead of profiling classes")
	energyOn := fs.Bool("energy", false, "sweep the policy × way-memo grid with the energy model instead of profiling classes")
	list := fs.Bool("list", false, "list the family names, without running")
	verify := fs.String("verify", "", "regenerate from this artifact's parameters and require byte equality (schema-sniffed)")
	verbose := fs.Bool("v", false, "print every synthesized kernel and spot-check cell")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q", fs.Arg(0))
	}

	if *list {
		for _, f := range synth.Families() {
			fmt.Fprintln(stdout, f.Name())
		}
		return nil
	}
	if *verify != "" {
		return verifyArtifact(*verify, *workers, stdout)
	}

	fams, err := selectFamilies(*familiesFlag)
	if err != nil {
		return err
	}
	o := core.DefaultOptions()
	if o.Mechanism, err = selectMechanism(*mech); err != nil {
		return err
	}
	spec := corpus.Spec{Families: fams, N: *n, BaseSeed: *seed}
	if *estimate && *energyOn {
		return fmt.Errorf("-estimate and -energy are mutually exclusive")
	}
	if *energyOn {
		art, err := executeEnergy(spec, o, *workers, stdout, stderr)
		if err != nil {
			return err
		}
		if *out != "" {
			if err := art.WriteFile(*out); err != nil {
				return err
			}
			fmt.Fprintf(stdout, "wrote %s\n", *out)
		}
		return nil
	}
	if *estimate {
		art, err := executeEstimate(spec, o, *workers, stdout, stderr)
		if err != nil {
			return err
		}
		if *out != "" {
			if err := art.WriteFile(*out); err != nil {
				return err
			}
			fmt.Fprintf(stdout, "wrote %s\n", *out)
		}
		return nil
	}
	art, err := execute(spec, *sample, o, *workers, stdout, stderr, *verbose)
	if err != nil {
		return err
	}
	if *out != "" {
		if err := art.WriteFile(*out); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s\n", *out)
	}
	if art.OracleDivergences > 0 {
		return fmt.Errorf("%d of %d oracle spot checks diverged", art.OracleDivergences, art.OracleSample)
	}
	return nil
}

// executeEstimate runs the synthesize → simulate → statically-analyze →
// score pipeline behind -estimate.
func executeEstimate(spec corpus.Spec, o core.Options, workers int, stdout, stderr io.Writer) (*report.EstimateJSON, error) {
	start := time.Now()
	kernels, st, err := corpus.Build(spec)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(stdout, "corpus: %d distinct kernels from %d families (%d draws, %d duplicates)\n",
		len(kernels), len(spec.Families), st.Generated, st.Duplicates)
	rows := corpus.Sweep(kernels, o, workers)
	ests := corpus.Estimates(kernels, o, workers)
	art := corpus.EstimateArtifact(spec, st, kernels, rows, ests, o)
	fmt.Fprintf(stdout, "estimate: verdicts %d exact / %d bounded / %d declined over %d kernels\n",
		art.Exact, art.Bounded, art.Declined, art.Kernels)
	for _, v := range art.Overall {
		fmt.Fprintf(stdout, "estimate: %-14s L1 mean|err| %.2fpp  max %.2fpp  bias %+.2fpp  (%d kernels)\n",
			v.Version, v.MeanAbsErrPct, v.MaxAbsErrPct, v.BiasPct, v.Kernels)
	}
	fmt.Fprintf(stdout, "estimate: fingerprint %s\n", art.CorpusFingerprint)
	fmt.Fprintf(stderr, "estimate: %.1fs\n", time.Since(start).Seconds())
	return art, nil
}

// executeEnergy runs the synthesize → policy×waymemo sweep → aggregate
// pipeline behind -energy.
func executeEnergy(spec corpus.Spec, o core.Options, workers int, stdout, stderr io.Writer) (*report.EnergyJSON, error) {
	start := time.Now()
	kernels, st, err := corpus.Build(spec)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(stdout, "corpus: %d distinct kernels from %d families (%d draws, %d duplicates)\n",
		len(kernels), len(spec.Families), st.Generated, st.Duplicates)
	art := corpus.EnergyArtifact(spec, st, kernels, o, workers)
	if err := art.Validate(); err != nil {
		return nil, err
	}
	for _, c := range art.Combos {
		memo := "off"
		if c.WayMemo {
			memo = "on"
		}
		fmt.Fprintf(stdout, "energy: %-3s memo=%-3s total %d pJ  (L1 miss %d, L2 miss %d, tag reads avoided %d)\n",
			c.Policy, memo, c.TotalPJ, c.L1Misses, c.L2Misses, c.TagReadsAvoided)
	}
	fmt.Fprintf(stdout, "energy: fingerprint %s\n", art.CorpusFingerprint)
	fmt.Fprintf(stderr, "energy: %.1fs\n", time.Since(start).Seconds())
	return art, nil
}

// execute runs the synthesize → sweep → spot-check → aggregate pipeline and
// returns the assembled artifact. Progress and timing go to stderr so
// stdout stays deterministic.
func execute(spec corpus.Spec, sample int, o core.Options, workers int, stdout, stderr io.Writer, verbose bool) (*report.CorpusJSON, error) {
	start := time.Now()
	kernels, st, err := corpus.Build(spec)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(stdout, "corpus: %d distinct kernels from %d families (%d draws, %d duplicates)\n",
		len(kernels), len(spec.Families), st.Generated, st.Duplicates)
	if verbose {
		for _, k := range kernels {
			fmt.Fprintf(stdout, "  %s  %s\n", k.Fingerprint[:12], k.Name())
		}
	}

	rows := corpus.Sweep(kernels, o, workers)
	checks := corpus.SpotCheck(kernels, sample, o, workers)
	for _, c := range checks {
		if c.Err != nil {
			fmt.Fprintf(stdout, "FAIL oracle %s\n     %v\n", c.Name(), c.Err)
		} else if verbose {
			fmt.Fprintf(stdout, "ok   oracle %s\n", c.Name())
		}
	}

	art := corpus.Artifact(spec, st, kernels, rows, checks, o)
	fmt.Fprintf(stdout, "corpus: swept %d versions/kernel, %d events; oracle %d/%d clean; %d class profiles\n",
		core.NumVersions, corpus.Events(rows), len(checks)-art.OracleDivergences, len(checks), len(art.Profiles))
	fmt.Fprintf(stdout, "corpus: fingerprint %s\n", art.CorpusFingerprint)
	fmt.Fprintf(stderr, "corpus: %.1fs\n", time.Since(start).Seconds())
	return art, nil
}

// verifyArtifact reruns the pipeline from the committed artifact's own
// recorded parameters and requires the regenerated artifact to be
// byte-identical — the determinism regression gate behind `make
// corpus-smoke` and `make estimate-smoke`. The artifact kind is sniffed
// from its schema field.
func verifyArtifact(path string, workers int, stdout io.Writer) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var head struct {
		Schema string `json:"schema"`
	}
	if err := json.Unmarshal(raw, &head); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	switch head.Schema {
	case report.EstimateSchema:
		return verifyEstimateArtifact(path, workers, stdout)
	case report.CorpusSchema:
		return verifyCorpusArtifact(path, workers, stdout)
	case report.EnergySchema:
		return verifyEnergyArtifact(path, workers, stdout)
	default:
		return fmt.Errorf("%s: unknown schema %q (want %q, %q or %q)", path, head.Schema, report.CorpusSchema, report.EstimateSchema, report.EnergySchema)
	}
}

// verifyEnergyArtifact is the energy-model counterpart: rerun the
// policy × way-memo sweep from the artifact's recorded parameters and
// require byte equality.
func verifyEnergyArtifact(path string, workers int, stdout io.Writer) error {
	want, err := report.LoadEnergyJSON(path)
	if err != nil {
		return err
	}
	fams := make([]synth.Family, len(want.Families))
	for i, name := range want.Families {
		f, ok := synth.FamilyByName(name)
		if !ok {
			return fmt.Errorf("%s: unknown family %q", path, name)
		}
		fams[i] = f
	}
	o := core.DefaultOptions()
	if o.Mechanism, err = selectMechanism(want.Mechanism); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if o.Machine.Name != want.Machine {
		return fmt.Errorf("%s: artifact machine %q, tool simulates %q", path, want.Machine, o.Machine.Name)
	}
	spec := corpus.Spec{Families: fams, N: want.Requested, BaseSeed: want.BaseSeed}
	kernels, st, err := corpus.Build(spec)
	if err != nil {
		return err
	}
	got := corpus.EnergyArtifact(spec, st, kernels, o, workers)

	wantJSON, err := json.MarshalIndent(want, "", "  ")
	if err != nil {
		return err
	}
	gotJSON, err := json.MarshalIndent(got, "", "  ")
	if err != nil {
		return err
	}
	if !bytes.Equal(gotJSON, wantJSON) {
		return fmt.Errorf("%s: regenerated artifact differs from committed file (same parameters must be byte-identical; regenerate with -energy -out if the change is intended)", path)
	}
	fmt.Fprintf(stdout, "verify %s: %d kernels × %d combos, artifact regenerates byte-identically\n",
		path, got.Kernels, len(got.Combos))
	return nil
}

func verifyCorpusArtifact(path string, workers int, stdout io.Writer) error {
	want, err := report.LoadCorpusJSON(path)
	if err != nil {
		return err
	}
	fams := make([]synth.Family, len(want.Families))
	for i, name := range want.Families {
		f, ok := synth.FamilyByName(name)
		if !ok {
			return fmt.Errorf("%s: unknown family %q", path, name)
		}
		fams[i] = f
	}
	o := core.DefaultOptions()
	if o.Mechanism, err = selectMechanism(want.Mechanism); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if o.Machine.Name != want.Machine {
		return fmt.Errorf("%s: artifact machine %q, tool simulates %q", path, want.Machine, o.Machine.Name)
	}
	spec := corpus.Spec{Families: fams, N: want.Requested, BaseSeed: want.BaseSeed}
	kernels, st, err := corpus.Build(spec)
	if err != nil {
		return err
	}
	rows := corpus.Sweep(kernels, o, workers)
	checks := corpus.SpotCheck(kernels, want.OracleSample, o, workers)
	got := corpus.Artifact(spec, st, kernels, rows, checks, o)

	wantJSON, err := json.MarshalIndent(want, "", "  ")
	if err != nil {
		return err
	}
	gotJSON, err := json.MarshalIndent(got, "", "  ")
	if err != nil {
		return err
	}
	if !bytes.Equal(gotJSON, wantJSON) {
		return fmt.Errorf("%s: regenerated artifact differs from committed file (same parameters must be byte-identical; regenerate with -out if the change is intended)", path)
	}
	fmt.Fprintf(stdout, "verify %s: %d kernels, oracle %d/%d clean, artifact regenerates byte-identically\n",
		path, got.Kernels, got.OracleSample-got.OracleDivergences, got.OracleSample)
	if got.OracleDivergences > 0 {
		return fmt.Errorf("%d oracle spot checks diverged", got.OracleDivergences)
	}
	return nil
}

// verifyEstimateArtifact is the estimator-accuracy counterpart: rerun the
// simulate-and-score pipeline from the artifact's recorded parameters and
// require byte equality.
func verifyEstimateArtifact(path string, workers int, stdout io.Writer) error {
	want, err := report.LoadEstimateJSON(path)
	if err != nil {
		return err
	}
	fams := make([]synth.Family, len(want.Families))
	for i, name := range want.Families {
		f, ok := synth.FamilyByName(name)
		if !ok {
			return fmt.Errorf("%s: unknown family %q", path, name)
		}
		fams[i] = f
	}
	o := core.DefaultOptions()
	if o.Mechanism, err = selectMechanism(want.Mechanism); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if o.Machine.Name != want.Machine {
		return fmt.Errorf("%s: artifact machine %q, tool simulates %q", path, want.Machine, o.Machine.Name)
	}
	spec := corpus.Spec{Families: fams, N: want.Requested, BaseSeed: want.BaseSeed}
	kernels, st, err := corpus.Build(spec)
	if err != nil {
		return err
	}
	rows := corpus.Sweep(kernels, o, workers)
	ests := corpus.Estimates(kernels, o, workers)
	got := corpus.EstimateArtifact(spec, st, kernels, rows, ests, o)

	wantJSON, err := json.MarshalIndent(want, "", "  ")
	if err != nil {
		return err
	}
	gotJSON, err := json.MarshalIndent(got, "", "  ")
	if err != nil {
		return err
	}
	if !bytes.Equal(gotJSON, wantJSON) {
		return fmt.Errorf("%s: regenerated artifact differs from committed file (same parameters must be byte-identical; regenerate with -estimate -out if the change is intended)", path)
	}
	fmt.Fprintf(stdout, "verify %s: %d kernels, %d exact / %d bounded / %d declined, artifact regenerates byte-identically\n",
		path, got.Kernels, got.Exact, got.Bounded, got.Declined)
	return nil
}

func selectFamilies(csv string) ([]synth.Family, error) {
	if csv == "" {
		return synth.Families(), nil
	}
	var out []synth.Family
	for _, name := range strings.Split(csv, ",") {
		f, ok := synth.FamilyByName(strings.TrimSpace(name))
		if !ok {
			return nil, fmt.Errorf("unknown family %q (see -list)", name)
		}
		out = append(out, f)
	}
	return out, nil
}

func selectMechanism(s string) (sim.HWKind, error) {
	switch s {
	case "bypass":
		return sim.HWBypass, nil
	case "victim":
		return sim.HWVictim, nil
	}
	return sim.HWNone, fmt.Errorf("unknown mechanism %q (want bypass|victim)", s)
}
