package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"selcache/internal/report"
	"selcache/internal/workloads/synth"
)

// TestRunFlagErrors pins the CLI error surface: bad flags, unknown
// selections and stray positional arguments return usage errors instead of
// starting a long sweep.
func TestRunFlagErrors(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string
	}{
		{"bad flag", []string{"-nonsense"}, "flag provided but not defined"},
		{"positional arg", []string{"extra"}, "unexpected argument"},
		{"unknown family", []string{"-families", "deep/affine/nope/unit"}, "unknown family"},
		{"unknown mechanism", []string{"-mech", "prefetch"}, "unknown mechanism"},
		{"zero kernels", []string{"-n", "0"}, "N 0 < 1"},
		{"missing verify file", []string{"-verify", filepath.Join(t.TempDir(), "no.json")}, "no such file"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			err := run(tc.args, &stdout, &stderr)
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("run(%q) = %v, want error containing %q", tc.args, err, tc.wantErr)
			}
		})
	}
}

func TestRunList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-list"}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(stdout.String()), "\n")
	if want := len(synth.Families()); len(lines) != want {
		t.Fatalf("-list printed %d families, want %d", len(lines), want)
	}
	if lines[0] != synth.Families()[0].Name() {
		t.Fatalf("-list order differs from enumeration: %q", lines[0])
	}
}

// TestRunSmallCorpusEndToEnd drives the full pipeline through the CLI on a
// tiny corpus: synthesize, sweep, spot-check, write the artifact, and then
// -verify it byte-for-byte from its own recorded parameters.
func TestRunSmallCorpusEndToEnd(t *testing.T) {
	out := filepath.Join(t.TempDir(), "corpus.json")
	args := []string{"-n", "8", "-sample", "3", "-seed", "1",
		"-families", "shallow/affine/small/unit,shallow/mostly-affine/small/strided,medium/irregular/small/spread",
		"-out", out}
	var stdout, stderr bytes.Buffer
	if err := run(args, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v\nstdout:\n%s", err, stdout.String())
	}
	for _, want := range []string{"8 distinct kernels", "oracle 3/3 clean", "corpus: fingerprint ", "wrote "} {
		if !strings.Contains(stdout.String(), want) {
			t.Errorf("stdout missing %q:\n%s", want, stdout.String())
		}
	}
	art, err := report.LoadCorpusJSON(out)
	if err != nil {
		t.Fatal(err)
	}
	if art.Kernels != 8 || art.OracleSample != 3 || art.OracleDivergences != 0 {
		t.Fatalf("artifact: %d kernels, oracle %d/%d", art.Kernels, art.OracleDivergences, art.OracleSample)
	}

	stdout.Reset()
	if err := run([]string{"-verify", out}, &stdout, &stderr); err != nil {
		t.Fatalf("verify: %v\nstdout:\n%s", err, stdout.String())
	}
	if !strings.Contains(stdout.String(), "regenerates byte-identically") {
		t.Fatalf("verify output:\n%s", stdout.String())
	}

	// Tampering with the committed artifact must fail verification even
	// when the file still validates structurally.
	art.Profiles[0].Versions[0].Cycles++
	if err := art.WriteFile(out); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-verify", out}, &stdout, &stderr); err == nil ||
		!strings.Contains(err.Error(), "differs from committed") {
		t.Fatalf("verify of tampered artifact = %v", err)
	}
}

// TestRunEstimateEndToEnd drives the estimator-accuracy pipeline through
// the CLI on a tiny corpus, then -verify re-scores it byte-for-byte — the
// verify path must sniff the estimate schema from the same flag the corpus
// artifact uses.
func TestRunEstimateEndToEnd(t *testing.T) {
	out := filepath.Join(t.TempDir(), "estimate.json")
	args := []string{"-estimate", "-n", "8", "-seed", "1",
		"-families", "shallow/affine/small/unit,shallow/mostly-affine/small/strided,medium/irregular/small/spread",
		"-out", out}
	var stdout, stderr bytes.Buffer
	if err := run(args, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v\nstdout:\n%s", err, stdout.String())
	}
	for _, want := range []string{"8 distinct kernels", "estimate: verdicts ", "L1 mean|err| ", "estimate: fingerprint ", "wrote "} {
		if !strings.Contains(stdout.String(), want) {
			t.Errorf("stdout missing %q:\n%s", want, stdout.String())
		}
	}
	art, err := report.LoadEstimateJSON(out)
	if err != nil {
		t.Fatal(err)
	}
	if art.Kernels != 8 || art.Exact+art.Bounded+art.Declined != 8 {
		t.Fatalf("artifact: %d kernels, verdicts %d/%d/%d", art.Kernels, art.Exact, art.Bounded, art.Declined)
	}

	stdout.Reset()
	if err := run([]string{"-verify", out}, &stdout, &stderr); err != nil {
		t.Fatalf("verify: %v\nstdout:\n%s", err, stdout.String())
	}
	if !strings.Contains(stdout.String(), "regenerates byte-identically") {
		t.Fatalf("verify output:\n%s", stdout.String())
	}

	// A tampered accuracy number must fail verification even though the
	// file still validates structurally.
	art.Overall[0].MaxAbsErrPct += art.Overall[0].MeanAbsErrPct + 1
	if err := art.WriteFile(out); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-verify", out}, &stdout, &stderr); err == nil ||
		!strings.Contains(err.Error(), "differs from committed") {
		t.Fatalf("verify of tampered artifact = %v", err)
	}
}

// TestVerifyCommittedEstimateArtifact regenerates the checked-in estimator
// smoke artifact — the `make estimate-smoke` gate, kept in `go test` so
// tier-1 alone catches model drift.
func TestVerifyCommittedEstimateArtifact(t *testing.T) {
	if testing.Short() {
		t.Skip("estimate artifact regeneration is a full 96-kernel sweep")
	}
	path := filepath.Join("..", "..", "ESTIMATE_smoke.json")
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("committed estimate artifact missing: %v", err)
	}
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-verify", path}, &stdout, &stderr); err != nil {
		t.Fatalf("verify: %v\nstdout:\n%s", err, stdout.String())
	}
}

// TestVerifyCommittedSmokeArtifact regenerates the checked-in smoke
// artifact from its own parameters — the same gate `make corpus-smoke`
// runs, kept in `go test` so tier-1 alone catches drift.
func TestVerifyCommittedSmokeArtifact(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke artifact regeneration is a full 96-kernel sweep")
	}
	path := filepath.Join("..", "..", "CORPUS_smoke.json")
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("committed smoke artifact missing: %v", err)
	}
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-verify", path}, &stdout, &stderr); err != nil {
		t.Fatalf("verify: %v\nstdout:\n%s", err, stdout.String())
	}
}
