package main

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"selcache/internal/experiments"
)

// TestRunFlagErrors pins the CLI error surface: bad flags, unknown -run
// selections and stray positional arguments return usage errors instead
// of starting a multi-minute regeneration.
func TestRunFlagErrors(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string
	}{
		{"bad flag", []string{"-nonsense"}, "flag provided but not defined"},
		{"unknown run", []string{"-run", "nope"}, `unknown -run "nope"`},
		{"positional arg", []string{"table2"}, "unexpected argument"},
		{"positional after flag", []string{"-run", "table2", "extra"}, "unexpected argument"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			err := run(tc.args, &stdout, &stderr)
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("run(%q) = %v, want error containing %q", tc.args, err, tc.wantErr)
			}
		})
	}
}

// TestWriteSummaryWarnsOnDiskErrors pins the stderr summary shape, in
// particular that a non-zero disk-error count gets its own warning line
// (a silent count buried in the parenthetical was easy to miss) and that
// a clean persisted run does not warn.
func TestWriteSummaryWarnsOnDiskErrors(t *testing.T) {
	stats := experiments.TraceCacheStats{Hits: 10, Misses: 3, DiskLoads: 1, DiskErrors: 2, Streams: 3, Bytes: 1 << 20}
	var buf bytes.Buffer
	writeSummary(&buf, 5_000_000, 2*time.Second, 4, stats, true)
	out := buf.String()
	for _, want := range []string{
		"throughput: 5.0M simulated events",
		"trace cache: 10 hits, 3 misses",
		"1 loaded from disk, 2 disk errors",
		"warning: 2 trace disk errors",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}

	buf.Reset()
	stats.DiskErrors = 0
	writeSummary(&buf, 5_000_000, 2*time.Second, 4, stats, true)
	if strings.Contains(buf.String(), "warning:") {
		t.Errorf("clean run should not warn:\n%s", buf.String())
	}

	// Without persistence the disk counters are omitted entirely.
	buf.Reset()
	writeSummary(&buf, 5_000_000, 2*time.Second, 4, stats, false)
	if strings.Contains(buf.String(), "loaded from disk") {
		t.Errorf("unpersisted run should not mention disk:\n%s", buf.String())
	}
}
