// Command experiments regenerates every table and figure of the paper's
// evaluation section:
//
//	experiments -run table2     # benchmark characteristics
//	experiments -run figures    # Figures 4-9 (cache bypassing)
//	experiments -run table3     # average improvements, both mechanisms
//	experiments -run all        # everything (the default)
//
// Sweeps fan out across a worker pool (-workers; 0 means one per CPU, 1
// forces the serial path) with deterministic assembly, so the output is
// identical at any worker count. Each distinct program variant is
// interpreted once into an event trace and replayed across every machine
// configuration; -tracedir persists those traces as .sctrace files so
// repeated runs skip the interpreter entirely. -cpuprofile writes a pprof
// profile of the run. Output goes to stdout; EXPERIMENTS.md records a
// reference run.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime/pprof"
	"time"

	"selcache/internal/core"
	"selcache/internal/experiments"
	"selcache/internal/parallel"
	"selcache/internal/report"
	"selcache/internal/sim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
}

// run is the testable body of main: flag parsing and dispatch with
// injectable arguments and output streams.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		runSel      = fs.String("run", "all", "table2|figures|table3|all")
		workers     = fs.Int("workers", 0, "worker pool size (0: one per CPU, 1: serial)")
		tracedir    = fs.String("tracedir", "", "persist recorded event traces as .sctrace files in `dir`")
		cpuprofile  = fs.String("cpuprofile", "", "write CPU profile to `file`")
		benchjson   = fs.String("benchjson", "", "write a machine-readable perf artifact (selcache-bench/v1) to `file`")
		verifybench = fs.String("verifybench", "", "validate an existing perf artifact at `file` and exit")
		policySel   = fs.String("policy", "lru", "cache replacement policy for every cell: lru|ehc")
		waymemo     = fs.Bool("waymemo", false, "enable way memoization on every cell")
		energyOn    = fs.Bool("energy", false, "enable the energy model and print per-figure energy tables")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q (flags only)", fs.Arg(0))
	}

	if *verifybench != "" {
		b, err := report.LoadBenchJSON(*verifybench)
		if err != nil {
			return err
		}
		fmt.Fprintf(stderr, "%s: valid %s artifact (run=%s, %d benchmarks, %.1fM events/s)\n",
			*verifybench, b.Schema, b.Run, len(b.Benchmarks), b.EventsPerSecond/1e6)
		return nil
	}

	doTable2 := *runSel == "all" || *runSel == "table2"
	doFigures := *runSel == "all" || *runSel == "figures"
	doTable3 := *runSel == "all" || *runSel == "table3"
	if !doTable2 && !doFigures && !doTable3 {
		return fmt.Errorf("unknown -run %q", *runSel)
	}

	// The mechanism-axis flags thread through an OptionMod; at the
	// defaults the mod stays nil and output is byte-identical to the
	// committed reference.
	var mod experiments.OptionMod
	var pol sim.PolicyKind
	switch *policySel {
	case "lru":
		pol = sim.PolicyLRU
	case "ehc":
		pol = sim.PolicyEHC
	default:
		return fmt.Errorf("unknown -policy %q (lru|ehc)", *policySel)
	}
	if pol != sim.PolicyLRU || *waymemo || *energyOn {
		mod = func(o *core.Options) {
			o.Policy = pol
			o.WayMemo = *waymemo
			o.Energy = *energyOn
		}
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	// Per-benchmark perf cells for -benchjson, accumulated across every
	// selection that ran, in first-seen (paper) order.
	var cells []report.BenchCell
	cellIdx := map[string]int{}
	addCell := func(name string, ev uint64, wall int64) {
		if *benchjson == "" {
			return
		}
		i, ok := cellIdx[name]
		if !ok {
			i = len(cells)
			cellIdx[name] = i
			cells = append(cells, report.BenchCell{Name: name})
		}
		cells[i].Events += ev
		cells[i].WallNanos += wall
	}
	addSweep := func(sw experiments.Sweep) {
		for _, row := range sw.Rows {
			for v := range row.Stats {
				addCell(row.Benchmark, row.Stats[v].Instructions, row.Stats[v].WallNanos)
			}
		}
	}

	tc := experiments.NewTraceCache(*tracedir)
	start := time.Now()
	var events uint64
	if doTable2 {
		rows := experiments.Table2CachedMod(*workers, tc, mod)
		for _, r := range rows {
			events += r.Instructions
			addCell(r.Benchmark, r.Instructions, r.WallNanos)
		}
		report.WriteTable2(stdout, rows)
	}
	if doFigures {
		for _, f := range experiments.Figures() {
			sw := experiments.RunFigureCachedMod(f, *workers, tc, mod)
			events += sw.Events()
			addSweep(sw)
			report.WriteFigure(stdout, f.Name(), sw)
			if *energyOn {
				report.WriteEnergy(stdout, sw)
			}
			if f == experiments.Figure4 {
				report.WriteClassAverages(stdout, sw)
			}
		}
	}
	if doTable3 {
		rows, sweeps := experiments.Table3CachedMod(*workers, tc, mod)
		for _, sw := range sweeps {
			events += sw.Events()
			addSweep(sw)
		}
		report.WriteTable3(stdout, rows)
	}
	elapsed := time.Since(start)

	if *benchjson != "" {
		bj := &report.BenchJSON{
			Schema:     report.BenchSchema,
			Run:        *runSel,
			Workers:    parallel.Workers(*workers),
			Events:     events,
			WallNanos:  elapsed.Nanoseconds(),
			Benchmarks: cells,
		}
		bj.Finalize()
		if err := bj.WriteFile(*benchjson); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "perf artifact: %s (%d benchmarks)\n", *benchjson, len(bj.Benchmarks))
	}

	writeSummary(stderr, events, elapsed, parallel.Workers(*workers), tc.Stats(), *tracedir != "")
	return nil
}

// writeSummary prints the run's throughput and trace-cache effectiveness.
// It goes to stderr so redirected stdout stays byte-stable against the
// committed reference (experiments_output.txt). A non-zero disk-error
// count gets its own warning line: silent persistence failures (a corrupt
// .sctrace, an unwritable directory) would otherwise look like ordinary
// cold-cache recordings.
func writeSummary(w io.Writer, events uint64, elapsed time.Duration, workers int, cs experiments.TraceCacheStats, persisted bool) {
	fmt.Fprintf(w, "throughput: %.1fM simulated events in %.1fs (%.1fM events/s, workers=%d)\n",
		float64(events)/1e6, elapsed.Seconds(),
		float64(events)/1e6/elapsed.Seconds(), workers)
	fmt.Fprintf(w, "trace cache: %d hits, %d misses (%d streams, %.1f MB recorded", cs.Hits, cs.Misses, cs.Streams, float64(cs.Bytes)/1e6)
	if persisted {
		fmt.Fprintf(w, ", %d loaded from disk, %d disk errors", cs.DiskLoads, cs.DiskErrors)
	}
	fmt.Fprintln(w, ")")
	if cs.DiskErrors > 0 {
		fmt.Fprintf(w, "warning: %d trace disk errors — persistence is degraded; check -tracedir permissions and delete corrupt .sctrace files\n", cs.DiskErrors)
	}
}
