// Command experiments regenerates every table and figure of the paper's
// evaluation section:
//
//	experiments -run table2     # benchmark characteristics
//	experiments -run figures    # Figures 4-9 (cache bypassing)
//	experiments -run table3     # average improvements, both mechanisms
//	experiments -run all        # everything (the default)
//
// Sweeps fan out across a worker pool (-workers; 0 means one per CPU, 1
// forces the serial path) with deterministic assembly, so the output is
// identical at any worker count. Each distinct program variant is
// interpreted once into an event trace and replayed across every machine
// configuration; -tracedir persists those traces as .sctrace files so
// repeated runs skip the interpreter entirely. -cpuprofile writes a pprof
// profile of the run. Output goes to stdout; EXPERIMENTS.md records a
// reference run.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"time"

	"selcache/internal/experiments"
	"selcache/internal/parallel"
	"selcache/internal/report"
)

func main() {
	run := flag.String("run", "all", "table2|figures|table3|all")
	workers := flag.Int("workers", 0, "worker pool size (0: one per CPU, 1: serial)")
	tracedir := flag.String("tracedir", "", "persist recorded event traces as .sctrace files in `dir`")
	cpuprofile := flag.String("cpuprofile", "", "write CPU profile to `file`")
	flag.Parse()

	doTable2 := *run == "all" || *run == "table2"
	doFigures := *run == "all" || *run == "figures"
	doTable3 := *run == "all" || *run == "table3"
	if !doTable2 && !doFigures && !doTable3 {
		fmt.Fprintf(os.Stderr, "experiments: unknown -run %q\n", *run)
		os.Exit(1)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	w := os.Stdout
	tc := experiments.NewTraceCache(*tracedir)
	start := time.Now()
	var events uint64
	if doTable2 {
		rows := experiments.Table2Cached(*workers, tc)
		for _, r := range rows {
			events += r.Instructions
		}
		report.WriteTable2(w, rows)
	}
	if doFigures {
		for _, f := range experiments.Figures() {
			sw := experiments.RunFigureCached(f, *workers, tc)
			events += sw.Events()
			report.WriteFigure(w, f.Name(), sw)
			if f == experiments.Figure4 {
				report.WriteClassAverages(w, sw)
			}
		}
	}
	if doTable3 {
		rows, sweeps := experiments.Table3Cached(*workers, tc)
		for _, sw := range sweeps {
			events += sw.Events()
		}
		report.WriteTable3(w, rows)
	}

	// The summary goes to stderr so redirected stdout stays byte-stable
	// against the committed reference (experiments_output.txt).
	elapsed := time.Since(start)
	fmt.Fprintf(os.Stderr, "throughput: %.1fM simulated events in %.1fs (%.1fM events/s, workers=%d)\n",
		float64(events)/1e6, elapsed.Seconds(),
		float64(events)/1e6/elapsed.Seconds(), parallel.Workers(*workers))
	cs := tc.Stats()
	fmt.Fprintf(os.Stderr, "trace cache: %d hits, %d misses (%d streams, %.1f MB recorded", cs.Hits, cs.Misses, cs.Streams, float64(cs.Bytes)/1e6)
	if *tracedir != "" {
		fmt.Fprintf(os.Stderr, ", %d loaded from disk, %d disk errors", cs.DiskLoads, cs.DiskErrors)
	}
	fmt.Fprintln(os.Stderr, ")")
}
