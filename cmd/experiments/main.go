// Command experiments regenerates every table and figure of the paper's
// evaluation section:
//
//	experiments -run table2     # benchmark characteristics
//	experiments -run figures    # Figures 4-9 (cache bypassing)
//	experiments -run table3     # average improvements, both mechanisms
//	experiments -run all        # everything (the default)
//
// Output goes to stdout; EXPERIMENTS.md records a reference run.
package main

import (
	"flag"
	"fmt"
	"os"

	"selcache/internal/experiments"
	"selcache/internal/report"
)

func main() {
	run := flag.String("run", "all", "table2|figures|table3|all")
	flag.Parse()

	doTable2 := *run == "all" || *run == "table2"
	doFigures := *run == "all" || *run == "figures"
	doTable3 := *run == "all" || *run == "table3"
	if !doTable2 && !doFigures && !doTable3 {
		fmt.Fprintf(os.Stderr, "experiments: unknown -run %q\n", *run)
		os.Exit(1)
	}

	w := os.Stdout
	if doTable2 {
		report.WriteTable2(w, experiments.Table2())
	}
	if doFigures {
		for _, f := range experiments.Figures() {
			sw := experiments.RunFigure(f)
			report.WriteFigure(w, f.Name(), sw)
			if f == experiments.Figure4 {
				report.WriteClassAverages(w, sw)
			}
		}
	}
	if doTable3 {
		report.WriteTable3(w, experiments.Table3())
	}
}
