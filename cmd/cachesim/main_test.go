package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunFlagParsing smoke-tests the CLI surface: every flag error path
// returns an error (instead of os.Exit deep in the run), and the cheap
// informational paths produce sensible output.
func TestRunFlagParsing(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string // substring; empty means success
		wantOut string // substring of stdout on success
	}{
		{"list", []string{"-list"}, "", "swim"},
		{"list all classes", []string{"-list"}, "", "tpc-c"},
		{"bad flag", []string{"-nonsense"}, "flag provided but not defined", ""},
		{"positional arg", []string{"swim"}, "unexpected argument", ""},
		{"unknown bench", []string{"-bench", "nope"}, `unknown benchmark "nope"`, ""},
		{"unknown config", []string{"-config", "nope"}, `unknown config "nope"`, ""},
		{"unknown mech", []string{"-mech", "nope"}, `unknown mechanism "nope"`, ""},
		{"unknown version", []string{"-version", "nope"}, `unknown version "nope"`, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			err := run(tc.args, &stdout, &stderr)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("run(%q) failed: %v", tc.args, err)
				}
				if !strings.Contains(stdout.String(), tc.wantOut) {
					t.Fatalf("stdout %q does not contain %q", stdout.String(), tc.wantOut)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("run(%q) = %v, want error containing %q", tc.args, err, tc.wantErr)
			}
		})
	}
}

// TestRunSingleBench runs one real (small-side) simulation end to end and
// checks the report line shape.
func TestRunSingleBench(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-bench", "swim", "-version", "base"}, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := stdout.String()
	for _, want := range []string{"swim", "base", "cycles=", "L1miss="} {
		if !strings.Contains(out, want) {
			t.Fatalf("output %q missing %q", out, want)
		}
	}
}
