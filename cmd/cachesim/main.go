// Command cachesim runs one benchmark through one simulated version and
// prints the measured statistics.
//
// Usage:
//
//	cachesim -bench swim -version selective -config base -mech bypass
//	cachesim -bench all -version all
//	cachesim -list
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"selcache/internal/core"
	"selcache/internal/sim"
	"selcache/internal/workloads"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "cachesim: %v\n", err)
		os.Exit(1)
	}
}

// run is the testable body of main: flag parsing and dispatch with
// injectable arguments and output streams.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("cachesim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		benchName = fs.String("bench", "swim", "benchmark name, or 'all'")
		version   = fs.String("version", "all", "base|pure-hardware|pure-software|combined|selective|all")
		configSel = fs.String("config", "base", "base|higher-mem-lat|larger-l2|larger-l1|higher-l2-assoc|higher-l1-assoc")
		mech      = fs.String("mech", "bypass", "bypass|victim")
		classify  = fs.Bool("classify", false, "attribute misses to conflict/capacity/compulsory")
		list      = fs.Bool("list", false, "list benchmarks and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q (flags only)", fs.Arg(0))
	}

	if *list {
		for _, w := range workloads.All() {
			fmt.Fprintf(stdout, "%-10s %-9s %s\n", w.Name, w.Class, w.Models)
		}
		return nil
	}

	cfg, ok := configByName(*configSel)
	if !ok {
		return fmt.Errorf("unknown config %q", *configSel)
	}
	o := core.DefaultOptions()
	o.Machine = cfg
	o.Classify = *classify
	switch *mech {
	case "bypass":
		o.Mechanism = sim.HWBypass
	case "victim":
		o.Mechanism = sim.HWVictim
	default:
		return fmt.Errorf("unknown mechanism %q", *mech)
	}

	if *version != "all" && !versionKnown(*version) {
		return fmt.Errorf("unknown version %q", *version)
	}

	var benches []workloads.Workload
	if *benchName == "all" {
		benches = workloads.All()
	} else {
		w, ok := workloads.ByName(*benchName)
		if !ok {
			return fmt.Errorf("unknown benchmark %q (try -list)", *benchName)
		}
		benches = []workloads.Workload{w}
	}

	for _, w := range benches {
		var base core.Result
		for _, v := range core.Versions() {
			if !versionSelected(*version, v) && v != core.Base {
				continue
			}
			res := core.Run(w.Build, v, o)
			if v == core.Base {
				base = res
			}
			if !versionSelected(*version, v) {
				continue
			}
			printResult(stdout, w, res, base)
		}
	}
	return nil
}

func versionSelected(sel string, v core.Version) bool {
	return sel == "all" || sel == v.String()
}

func versionKnown(sel string) bool {
	for _, v := range core.Versions() {
		if sel == v.String() {
			return true
		}
	}
	return false
}

func configByName(name string) (sim.Config, bool) {
	for _, c := range sim.ExperimentConfigs() {
		if c.Name == name {
			return c, true
		}
	}
	return sim.Config{}, false
}

func printResult(w io.Writer, wl workloads.Workload, r, base core.Result) {
	s := r.Sim
	fmt.Fprintf(w, "%-10s %-14s cycles=%-12d instr=%-11d mem=%-10d L1miss=%5.2f%% L2miss=%5.2f%%",
		wl.Name, r.Version, s.Cycles, s.Instructions, s.MemOps,
		100*s.L1.MissRate(), 100*s.L2.MissRate())
	if r.Version != core.Base && base.Sim.Cycles > 0 {
		fmt.Fprintf(w, " improv=%6.2f%%", core.Improvement(base, r))
	}
	if s.Markers > 0 {
		fmt.Fprintf(w, " markers=%d", s.Markers)
	}
	if s.Bypasses > 0 {
		fmt.Fprintf(w, " bypass=%d bufHit=%d", s.Bypasses, s.Buffer.Hits)
	}
	if s.Victim1.Probes > 0 {
		fmt.Fprintf(w, " vc1hit=%d vc2hit=%d", s.Victim1.Hits, s.Victim2.Hits)
	}
	if r.Version == core.Selective {
		fmt.Fprintf(w, " [regions hw=%d sw=%d mixed=%d markers ins=%d elim=%d]",
			r.Regions.HardwareLoops, r.Regions.SoftwareLoops, r.Regions.MixedLoops,
			r.Regions.Inserted, r.Regions.Eliminated)
	}
	if r.Opt.NestsOptimized > 0 {
		fmt.Fprintf(w, " [opt ic=%d layout=%d tile=%d uj=%d sr=%d]",
			r.Opt.Interchanged, r.Opt.LayoutsChanged, r.Opt.Tiled, r.Opt.Unrolled, r.Opt.RefsPromoted)
	}
	fmt.Fprintln(w)
	if s.L1Class.Total() > 0 {
		fmt.Fprintf(w, "           L1 misses: conflict=%d capacity=%d compulsory=%d\n",
			s.L1Class.Conflict, s.L1Class.Capacity, s.L1Class.Compulsory)
	}
}
