// Command cachesim runs one benchmark through one simulated version and
// prints the measured statistics.
//
// Usage:
//
//	cachesim -bench swim -version selective -config base -mech bypass
//	cachesim -bench all -version all
//	cachesim -list
package main

import (
	"flag"
	"fmt"
	"os"

	"selcache/internal/core"
	"selcache/internal/sim"
	"selcache/internal/workloads"
)

func main() {
	var (
		benchName = flag.String("bench", "swim", "benchmark name, or 'all'")
		version   = flag.String("version", "all", "base|pure-hardware|pure-software|combined|selective|all")
		configSel = flag.String("config", "base", "base|higher-mem-lat|larger-l2|larger-l1|higher-l2-assoc|higher-l1-assoc")
		mech      = flag.String("mech", "bypass", "bypass|victim")
		classify  = flag.Bool("classify", false, "attribute misses to conflict/capacity/compulsory")
		list      = flag.Bool("list", false, "list benchmarks and exit")
	)
	flag.Parse()

	if *list {
		for _, w := range workloads.All() {
			fmt.Printf("%-10s %-9s %s\n", w.Name, w.Class, w.Models)
		}
		return
	}

	cfg, ok := configByName(*configSel)
	if !ok {
		fatalf("unknown config %q", *configSel)
	}
	o := core.DefaultOptions()
	o.Machine = cfg
	o.Classify = *classify
	switch *mech {
	case "bypass":
		o.Mechanism = sim.HWBypass
	case "victim":
		o.Mechanism = sim.HWVictim
	default:
		fatalf("unknown mechanism %q", *mech)
	}

	var benches []workloads.Workload
	if *benchName == "all" {
		benches = workloads.All()
	} else {
		w, ok := workloads.ByName(*benchName)
		if !ok {
			fatalf("unknown benchmark %q (try -list)", *benchName)
		}
		benches = []workloads.Workload{w}
	}

	for _, w := range benches {
		var base core.Result
		for _, v := range core.Versions() {
			if !versionSelected(*version, v) && v != core.Base {
				continue
			}
			res := core.Run(w.Build, v, o)
			if v == core.Base {
				base = res
			}
			if !versionSelected(*version, v) {
				continue
			}
			printResult(w, res, base)
		}
	}
}

func versionSelected(sel string, v core.Version) bool {
	return sel == "all" || sel == v.String()
}

func configByName(name string) (sim.Config, bool) {
	for _, c := range sim.ExperimentConfigs() {
		if c.Name == name {
			return c, true
		}
	}
	return sim.Config{}, false
}

func printResult(w workloads.Workload, r, base core.Result) {
	s := r.Sim
	fmt.Printf("%-10s %-14s cycles=%-12d instr=%-11d mem=%-10d L1miss=%5.2f%% L2miss=%5.2f%%",
		w.Name, r.Version, s.Cycles, s.Instructions, s.MemOps,
		100*s.L1.MissRate(), 100*s.L2.MissRate())
	if r.Version != core.Base && base.Sim.Cycles > 0 {
		fmt.Printf(" improv=%6.2f%%", core.Improvement(base, r))
	}
	if s.Markers > 0 {
		fmt.Printf(" markers=%d", s.Markers)
	}
	if s.Bypasses > 0 {
		fmt.Printf(" bypass=%d bufHit=%d", s.Bypasses, s.Buffer.Hits)
	}
	if s.Victim1.Probes > 0 {
		fmt.Printf(" vc1hit=%d vc2hit=%d", s.Victim1.Hits, s.Victim2.Hits)
	}
	if r.Version == core.Selective {
		fmt.Printf(" [regions hw=%d sw=%d mixed=%d markers ins=%d elim=%d]",
			r.Regions.HardwareLoops, r.Regions.SoftwareLoops, r.Regions.MixedLoops,
			r.Regions.Inserted, r.Regions.Eliminated)
	}
	if r.Opt.NestsOptimized > 0 {
		fmt.Printf(" [opt ic=%d layout=%d tile=%d uj=%d sr=%d]",
			r.Opt.Interchanged, r.Opt.LayoutsChanged, r.Opt.Tiled, r.Opt.Unrolled, r.Opt.RefsPromoted)
	}
	fmt.Println()
	if s.L1Class.Total() > 0 {
		fmt.Printf("           L1 misses: conflict=%d capacity=%d compulsory=%d\n",
			s.L1Class.Conflict, s.L1Class.Capacity, s.L1Class.Compulsory)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "cachesim: "+format+"\n", args...)
	os.Exit(1)
}
