package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunFlagErrors pins the CLI error surface: bad flags and stray
// positional arguments return usage errors instead of starting a
// multi-second calibration sweep (the success path is exercised by the
// experiments-package tests that share its entry points).
func TestRunFlagErrors(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string
	}{
		{"bad flag", []string{"-nonsense"}, "flag provided but not defined"},
		{"positional arg", []string{"quick"}, "unexpected argument"},
		{"positional after flag", []string{"-quick", "extra"}, "unexpected argument"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			err := run(tc.args, &stdout, &stderr)
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("run(%q) = %v, want error containing %q", tc.args, err, tc.wantErr)
			}
		})
	}
}
