// Command calibrate sweeps the contested hardware-policy knobs (bypass
// fetch span, buffer forwarding latency, prefetch source, cold thresholds)
// and scores each combination against the qualitative shape constraints the
// paper's results impose:
//
//	S1  selective >= combined for every benchmark;
//	S2  selective >= pure-software and >= pure-hardware for every benchmark;
//	S3  pure hardware helps irregular codes on average;
//	S4  pure hardware helps irregular codes more than regular codes;
//	S5  selective beats combined clearly on average;
//	S6  pure software dominates on regular codes.
//
// It exists because those constraints pull the mechanism model in opposite
// directions, and hand-tuning one knob at a time thrashes. The chosen
// combination is frozen into the library defaults; re-run this tool after
// touching the mechanism model or the workloads.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"selcache/internal/core"
	"selcache/internal/experiments"
	"selcache/internal/mat"
	"selcache/internal/workloads"
)

type combo struct {
	bufHitLat  float64
	prefL2     bool
	span       int
	coldSparse uint32
	cold       uint32
}

func (c combo) String() string {
	return fmt.Sprintf("bufLat=%.2f prefL2=%-5v span=%d coldSparse=%-3d cold=%d",
		c.bufHitLat, c.prefL2, c.span, c.coldSparse, c.cold)
}

type scored struct {
	c          combo
	violations []string
	score      float64
	avg        [core.NumVersions]float64
}

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "calibrate: %v\n", err)
		os.Exit(1)
	}
}

// run is the testable body of main: flag parsing and dispatch with
// injectable arguments and output streams.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("calibrate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	quick := fs.Bool("quick", false, "coarser grid")
	workers := fs.Int("workers", 0, "sweep worker pool size (0: one per CPU, 1: serial)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q (flags only)", fs.Arg(0))
	}

	bufLats := []float64{0, 0.5}
	spans := []int{4}
	colds := []uint32{4, 8, 16}
	if *quick {
		bufLats = []float64{0}
		spans = []int{4}
		colds = []uint32{8}
	}

	var results []scored
	for _, bl := range bufLats {
		for _, pl2 := range []bool{true, false} {
			for _, span := range spans {
				for _, cs := range colds {
					c := combo{bufHitLat: bl, prefL2: pl2, span: span, coldSparse: cs, cold: 64}
					results = append(results, evaluate(c, *workers))
					last := results[len(results)-1]
					fmt.Fprintf(stdout, "%s  score=%6.2f  viol=%d\n", c, last.score, len(last.violations))
				}
			}
		}
	}
	sort.Slice(results, func(i, j int) bool { return results[i].score < results[j].score })
	fmt.Fprintln(stdout, "\n=== best combinations ===")
	for i := 0; i < len(results) && i < 5; i++ {
		r := results[i]
		fmt.Fprintf(stdout, "#%d %s score=%.2f\n", i+1, r.c, r.score)
		fmt.Fprintf(stdout, "   avg: hw=%.2f sw=%.2f comb=%.2f sel=%.2f\n",
			r.avg[core.PureHardware], r.avg[core.PureSoftware],
			r.avg[core.Combined], r.avg[core.Selective])
		for _, v := range r.violations {
			fmt.Fprintf(stdout, "   ! %s\n", v)
		}
	}
	return nil
}

// evaluate scores one knob combination. The 13-benchmark sweep inside it
// fans out across the worker pool; scoring reads the assembled sweep, so
// the scores are identical at any worker count.
func evaluate(c combo, workers int) scored {
	o := core.DefaultOptions()
	o.Machine.BufferHitLat = c.bufHitLat
	o.Machine.PrefetchFromL2 = c.prefL2
	m := mat.DefaultConfig()
	m.FillSpanWords = c.span
	m.ColdMaxSparse = c.coldSparse
	m.ColdMax = c.cold
	o.MAT = m

	sw := experiments.RunSweepWorkers(o, nil, workers)
	s := scored{c: c, avg: sw.Avg}

	const eps = 0.25
	for _, row := range sw.Rows {
		sel := row.Improv[core.Selective]
		if d := row.Improv[core.Combined] - sel; d > eps {
			s.violations = append(s.violations,
				fmt.Sprintf("S1 %s: combined %.2f > selective %.2f", row.Benchmark, row.Improv[core.Combined], sel))
			s.score += d
		}
		if d := row.Improv[core.PureSoftware] - sel; d > eps {
			s.violations = append(s.violations,
				fmt.Sprintf("S2 %s: puresw %.2f > selective %.2f", row.Benchmark, row.Improv[core.PureSoftware], sel))
			s.score += d
		}
		if d := row.Improv[core.PureHardware] - sel; d > eps {
			s.violations = append(s.violations,
				fmt.Sprintf("S2 %s: purehw %.2f > selective %.2f", row.Benchmark, row.Improv[core.PureHardware], sel))
			s.score += d
		}
	}
	irr := sw.ClassAvg[workloads.Irregular][core.PureHardware]
	reg := sw.ClassAvg[workloads.Regular][core.PureHardware]
	if irr < 0.5 {
		s.violations = append(s.violations, fmt.Sprintf("S3 irregular purehw avg %.2f < 0.5", irr))
		s.score += 2 * (0.5 - irr)
	}
	if irr < reg {
		s.violations = append(s.violations, fmt.Sprintf("S4 irregular purehw %.2f < regular %.2f", irr, reg))
		s.score += reg - irr
	}
	if gap := sw.Avg[core.Selective] - sw.Avg[core.Combined]; gap < 0.25 {
		s.violations = append(s.violations, fmt.Sprintf("S5 selective-combined gap %.2f < 0.25", gap))
		s.score += 0.25 - gap
	}
	if regSW := sw.ClassAvg[workloads.Regular][core.PureSoftware]; regSW < 30 {
		s.violations = append(s.violations, fmt.Sprintf("S6 regular puresw avg %.2f < 30", regSW))
		s.score += 0.1 * (30 - regSW)
	}
	// Prefer larger absolute hardware benefit on irregular codes once
	// constraints hold (tie-break).
	s.score -= 0.05 * irr
	return s
}
