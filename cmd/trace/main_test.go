package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

// TestTraceCLI drives record -> stats -> replay through the run entry
// point on the cheapest workload, plus the flag error paths.
func TestTraceCLI(t *testing.T) {
	out := filepath.Join(t.TempDir(), "swim.sctrace")

	var stdout, stderr bytes.Buffer
	if err := run([]string{"-record", "-workload", "swim", "-version", "base", "-o", out}, &stdout, &stderr); err != nil {
		t.Fatalf("record: %v", err)
	}
	if !strings.Contains(stdout.String(), "recorded swim base") {
		t.Fatalf("record output %q", stdout.String())
	}

	stdout.Reset()
	if err := run([]string{"-stats", out}, &stdout, &stderr); err != nil {
		t.Fatalf("stats: %v", err)
	}
	for _, want := range []string{"events", "accesses", "encoded size"} {
		if !strings.Contains(stdout.String(), want) {
			t.Fatalf("stats output %q missing %q", stdout.String(), want)
		}
	}

	stdout.Reset()
	if err := run([]string{"-replay", out, "-version", "base"}, &stdout, &stderr); err != nil {
		t.Fatalf("replay: %v", err)
	}
	for _, want := range []string{"cycles", "L1 misses", "IPC"} {
		if !strings.Contains(stdout.String(), want) {
			t.Fatalf("replay output %q missing %q", stdout.String(), want)
		}
	}

	stdout.Reset()
	if err := run([]string{"-list"}, &stdout, &stderr); err != nil || !strings.Contains(stdout.String(), "swim") {
		t.Fatalf("list: err=%v out=%q", err, stdout.String())
	}
}

func TestTraceCLIErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"no mode", nil, "one of -record, -stats or -replay"},
		{"record without workload", []string{"-record", "-o", "x"}, "requires -workload"},
		{"record without output", []string{"-record", "-workload", "swim"}, "requires -o"},
		{"unknown workload", []string{"-record", "-workload", "nope", "-o", "x"}, `unknown workload "nope"`},
		{"unknown version", []string{"-record", "-workload", "swim", "-version", "nope", "-o", "x"}, `unknown version "nope"`},
		{"missing file", []string{"-stats", "/nonexistent.sctrace"}, "no such file"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			err := run(tc.args, &stdout, &stderr)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("run(%q) = %v, want error containing %q", tc.args, err, tc.want)
			}
		})
	}
}
