// Command trace records, inspects and replays .sctrace event-stream files
// (see internal/trace for the format):
//
//	trace -record -workload swim -version selective -o swim.sctrace
//	trace -stats swim.sctrace            # header counters + size
//	trace -replay swim.sctrace -version selective
//
// Recording interprets the chosen program variant once and captures the
// raw access/compute/marker stream. Replay drives the full simulated
// machine from the file and prints the same statistics block a live
// cachesim run of that version would produce — byte-identical, because the
// machine cannot tell a replayed stream from a live one. The replay
// version selects the machine-side configuration (which hardware
// mechanism is active and whether it honors markers); it must match the
// recorded stream's class or the statistics describe a stream that
// version would never emit.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"selcache/internal/core"
	"selcache/internal/trace"
	"selcache/internal/workloads"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "trace: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("trace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	record := fs.Bool("record", false, "record a workload's event stream")
	stats := fs.String("stats", "", "print header statistics of the .sctrace `file`")
	replay := fs.String("replay", "", "replay the .sctrace `file` through the simulator")
	workload := fs.String("workload", "", "workload to record (see -list)")
	version := fs.String("version", "selective", "base|pure-hardware|pure-software|combined|selective")
	out := fs.String("o", "", "output `file` for -record")
	list := fs.Bool("list", false, "list available workloads")
	if err := fs.Parse(args); err != nil {
		return err
	}

	switch {
	case *list:
		for _, w := range workloads.All() {
			fmt.Fprintln(stdout, w.Name)
		}
		return nil
	case *record:
		return doRecord(stdout, *workload, *version, *out)
	case *stats != "":
		return doStats(stdout, *stats)
	case *replay != "":
		return doReplay(stdout, *replay, *version)
	default:
		fs.Usage()
		return fmt.Errorf("one of -record, -stats or -replay is required")
	}
}

func parseVersion(s string) (core.Version, error) {
	for _, v := range core.Versions() {
		if strings.EqualFold(v.String(), s) {
			return v, nil
		}
	}
	return 0, fmt.Errorf("unknown version %q (want base|pure-hardware|pure-software|combined|selective)", s)
}

func doRecord(stdout io.Writer, workload, version, out string) error {
	if workload == "" {
		return fmt.Errorf("-record requires -workload (try -list)")
	}
	if out == "" {
		return fmt.Errorf("-record requires -o")
	}
	w, ok := workloads.ByName(workload)
	if !ok {
		return fmt.Errorf("unknown workload %q (try -list)", workload)
	}
	v, err := parseVersion(version)
	if err != nil {
		return err
	}
	t, _, _ := core.RecordTrace(w.Build, v, core.DefaultOptions())
	if err := t.WriteFile(out); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "recorded %s %s: %d events, %d bytes -> %s\n",
		w.Name, v, t.Meta.Events, t.EncodedSize(), out)
	return nil
}

func doStats(stdout io.Writer, path string) error {
	t, err := trace.ReadFile(path)
	if err != nil {
		return err
	}
	m := t.Meta
	fmt.Fprintf(stdout, "%s:\n", path)
	fmt.Fprintf(stdout, "  events        %12d\n", m.Events)
	fmt.Fprintf(stdout, "  accesses      %12d  (%d reads, %d writes)\n", m.Accesses, m.Reads, m.Writes)
	fmt.Fprintf(stdout, "  compute       %12d  instructions in %d calls\n", m.ComputeInstr, m.ComputeCalls)
	fmt.Fprintf(stdout, "  markers       %12d  (%d ON, %d OFF)\n", m.Markers, m.OnMarkers, m.Markers-m.OnMarkers)
	fmt.Fprintf(stdout, "  instructions  %12d\n", m.Instructions())
	fmt.Fprintf(stdout, "  encoded size  %12d  bytes (%.2f bits/event)\n",
		t.EncodedSize(), float64(t.EncodedSize())*8/float64(m.Events))
	return nil
}

func doReplay(stdout io.Writer, path, version string) error {
	v, err := parseVersion(version)
	if err != nil {
		return err
	}
	t, err := trace.ReadFile(path)
	if err != nil {
		return err
	}
	res := core.ReplayTrace(t, v, core.DefaultOptions())
	st := res.Sim
	fmt.Fprintf(stdout, "replayed %s as %s:\n", path, v)
	fmt.Fprintf(stdout, "  cycles        %12d\n", st.Cycles)
	fmt.Fprintf(stdout, "  instructions  %12d\n", st.Instructions)
	fmt.Fprintf(stdout, "  L1 misses     %12d  (%.2f%% of %d accesses)\n",
		st.L1.Misses, 100*float64(st.L1.Misses)/float64(st.L1.Accesses), st.L1.Accesses)
	fmt.Fprintf(stdout, "  L2 misses     %12d\n", st.L2.Misses)
	fmt.Fprintf(stdout, "  IPC           %12.3f\n", st.IPC())
	fmt.Fprintf(stdout, "  wall time     %12.1f  ms\n", float64(res.Sim.WallNanos)/1e6)
	return nil
}
