package selcache_test

import (
	"testing"

	"selcache/internal/core"
	"selcache/internal/trace"
	"selcache/internal/workloads"
)

// TestBatchedReplayEquivalence is the golden suite for the columnar batched
// replay engine: for every workload × version cell, a recorded trace
// replayed through the batched path must produce RunStats byte-identical to
// the scalar event-at-a-time path (WallNanos, the one host-timing field,
// zeroed). Cycle counts, every cache/TLB/MAT counter, and the float cycle
// accumulation order are all covered by the struct compare.
//
// Under -short (the -race CI leg) it spot-checks one workload per access
// class; the full matrix runs 13 × 5 cells.
func TestBatchedReplayEquivalence(t *testing.T) {
	ws := workloads.All()
	if testing.Short() {
		ws = nil
		for _, name := range []string{"applu", "vpenta", "tpc-c"} {
			w, ok := workloads.ByName(name)
			if !ok {
				t.Fatalf("short-mode workload %q missing", name)
			}
			ws = append(ws, w)
		}
	}
	o := core.DefaultOptions()
	// One reusable block across all cells, as the sweep engine uses them:
	// equivalence must hold with a dirty recycled buffer, not just a fresh
	// one per replay.
	blk := trace.NewBlock(trace.DefaultBlockEvents)
	for _, w := range ws {
		for _, v := range core.Versions() {
			t.Run(w.Name+"/"+v.String(), func(t *testing.T) {
				tr, _, _ := core.RecordTrace(w.Build, v, o)
				sc := core.ReplayTraceScalar(tr, v, o)
				ba := core.ReplayTraceBuffered(tr, v, o, blk)
				sc.Sim.WallNanos, ba.Sim.WallNanos = 0, 0
				if sc.Sim != ba.Sim {
					t.Errorf("batched replay diverges from scalar\nscalar:  %+v\nbatched: %+v", sc.Sim, ba.Sim)
				}
			})
		}
	}
}
